package pubsub

// TCP transport: brokers over real sockets — the deployable stack,
// promoted out of the former internal/wire package and rebuilt around
// a concurrent pipeline with a negotiated binary wire codec.
//
// # Wire protocol
//
// The first frame on any connection is a hello identifying the sender
// (and whether it is a client or a peer broker); the accepting side
// answers with an ack naming its broker. Hello and ack are ALWAYS
// newline-delimited JSON and both carry a `codec` field advertising
// the highest binary wire version the sender decodes — a side may
// switch its data frames to the length-prefixed binary codec (see
// codec.go) only after the remote end advertised it, so PR-3 peers
// that know neither the field nor the format keep working in both
// directions: they never advertise (so they are sent JSON), the ack
// reaches them as a frame with no message (which they ignore), and
// their JSON frames decode here because every frame is sniffed by its
// first byte.
//
// Every frame after the handshake carries one broker.Message —
// including the SUBBATCH/UNSUBBATCH bursts that feed batch admission.
// Peer brokers hold one outbound connection per direction (A dials B
// and B dials A), so no multiplexing is needed; clients hold a single
// duplex connection on which the ack and notifications are pushed
// back.
//
// # Concurrency model
//
// The old wire server serialized every message behind one mutex. The
// pipeline here has three stages, and the serialization boundary is
// exactly the broker's own locking discipline (see internal/broker):
//
//   - one READER goroutine per inbound connection decodes frames and
//     feeds them, in connection order, into broker.Handle. Publishes
//     run under the broker's shared lock — matching proceeds
//     CONCURRENTLY across connections — while subscribes and
//     unsubscribes take the exclusive lock, keeping coverage-table
//     admission ordered (per port by the reader's sequencing, across
//     ports by the lock). A reader that finds more publish frames
//     already buffered coalesces them (up to maxPublishCoalesce) into
//     ONE HandlePublishBatch call, paying the RWMutex once per run
//     instead of once per frame at high rates.
//   - one WRITER goroutine per outbound port encodes frames from a
//     buffered queue into pooled buffers, so a slow or stalled peer
//     never blocks matching and concurrent publishes never interleave
//     frame bytes.
//   - Shutdown stops readers at a frame boundary, waits for in-flight
//     handling, then closes the writer queues so every already-queued
//     frame drains before the connections close.
//
// Per-destination delivery order is preserved end to end: a reader
// enqueues each frame's output before decoding the next, and a single
// writer drains each queue in FIFO order.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"probsum/internal/broker"
	"probsum/internal/obs"
	"probsum/internal/persist"
)

// Frame is the on-the-wire envelope of the TCP transport.
type Frame struct {
	// Hello identifies the sender on the first frame of a connection.
	Hello string `json:"hello,omitempty"`
	// Client marks a hello as coming from a client (not a broker).
	Client bool `json:"client,omitempty"`
	// Addr carries a dialing broker's own listen address so the
	// accepting side can dial back and complete the bidirectional
	// link without being configured with the peer itself (best-effort:
	// useful when the address is reachable from the acceptor).
	Addr string `json:"addr,omitempty"`
	// Ack identifies the accepting broker on its first frame back —
	// the handshake reply that completes codec negotiation. Peers that
	// predate it see a frame without a message and ignore it.
	Ack string `json:"ack,omitempty"`
	// Codec advertises, on hello and ack frames, the highest binary
	// wire version the sender decodes (0 = JSON only, the implicit
	// advertisement of peers that predate the field).
	Codec uint8 `json:"codec,omitempty"`
	// Cluster advertises, on hello and ack frames, the cluster
	// membership protocol version the sender speaks (0 = none, the
	// implicit advertisement of peers without a cluster layer — such
	// peers are never sent ping/pong/gossip frames).
	Cluster uint8 `json:"cluster,omitempty"`
	// Msg carries one protocol message on subsequent frames.
	Msg *broker.Message `json:"msg,omitempty"`
}

// clusterProtoVersion is the membership protocol spoken by this build's
// cluster layer and advertised in hello/ack frames once a control
// handler is attached.
const clusterProtoVersion = 1

// TCPOption tunes the TCP transport.
type TCPOption func(*tcpConfig)

type tcpConfig struct {
	serialized bool
	queueLen   int
	codec      WireCodec // broker-side cap: what this server advertises and may send
	dialCodec  WireCodec // client-side cap used by Transport.Open

	dataDir      string        // durability directory ("" = in-memory only)
	syncEvery    int           // journal fsync batch (0 = BrokerJournal default)
	snapInterval time.Duration // periodic snapshot cadence (0 = 30s)
}

func defaultTCPConfig() tcpConfig {
	return tcpConfig{codec: CodecBinary5, dialCodec: CodecBinary5}
}

// WithWireCodec caps the codec a broker advertises and sends.
// CodecBinary5 (the default) negotiates the binary format and the
// full message vocabulary — including the rendezvous route-announce
// frame — with every peer that also decodes it; CodecBinary4 pins
// the PR-8 vocabulary (SWIM indirect probes and delta gossip, no
// route announces), CodecBinary3 the PR-6/7 vocabulary
// (full-snapshot gossip only, no ping-req/delta frames), CodecBinary2
// the PR-5 vocabulary (no sync frames, digest-less gossip),
// CodecBinary the PR-4 vocabulary (no publish batches, no cluster
// frames), and CodecJSON the PR-3 JSON format — on the wire those
// behave exactly like the older builds, which is how the
// cross-version interop tests model old peers. Decoding always
// accepts every format regardless.
func WithWireCodec(c WireCodec) TCPOption {
	return func(cfg *tcpConfig) { cfg.codec = c }
}

// WithDialWireCodec caps the codec clients opened through
// Transport.Open advertise and send (default CodecBinary5). The
// cross-process form is Dial's WithDialCodec.
func WithDialWireCodec(c WireCodec) TCPOption {
	return func(cfg *tcpConfig) { cfg.dialCodec = c }
}

// WithDataDir makes the broker durable: subscriptions, port
// registrations, and the publication-dedup window are journaled to an
// append-only fsync-batched log under dir, compacted by periodic
// snapshots, and a broker restarted over the same directory replays
// itself back to its pre-crash routing state — rejoining the overlay
// without clients re-announcing anything. The digest reconciliation
// protocol then repairs whatever diverged (the unsynced log tail lost
// to the crash, peer-side changes made while down).
func WithDataDir(dir string) TCPOption {
	return func(c *tcpConfig) { c.dataDir = dir }
}

// WithJournalSync sets the journal's fsync batch: the log is forced
// to stable storage after every n-th record (1 = every record;
// default 64). Smaller n narrows the window a crash can lose at the
// price of more fsyncs on the subscribe path.
func WithJournalSync(n int) TCPOption {
	return func(c *tcpConfig) { c.syncEvery = n }
}

// WithSnapshotInterval sets the cadence of the periodic
// log-compacting snapshot (default 30s).
func WithSnapshotInterval(d time.Duration) TCPOption {
	return func(c *tcpConfig) { c.snapInterval = d }
}

// WithSerializedDispatch restores the pre-pipeline behavior of
// handling every inbound message — broker state machine AND outbound
// frame encoding — under one global mutex. It exists as the ablation
// baseline for the concurrency model (see BenchmarkTCPPublish);
// production code should never set it.
func WithSerializedDispatch() TCPOption {
	return func(c *tcpConfig) { c.serialized = true }
}

// WithSendQueue sets the per-port outbound queue length (default 256
// frames). A full queue applies backpressure to the readers that are
// producing for it.
func WithSendQueue(n int) TCPOption {
	return func(c *tcpConfig) { c.queueLen = n }
}

// wireItem is one entry of a port's outbound queue: a protocol
// message, or a pre-built control frame (the handshake ack, always
// JSON).
type wireItem struct {
	msg  broker.Message
	ctrl *Frame
}

// tcpPort is one outbound destination: a connection, its writer
// goroutine's queue, and a kill switch.
type tcpPort struct {
	name string
	peer bool // a neighbor broker (as opposed to a client)
	conn net.Conn
	// codec is the negotiated write codec for this destination. Client
	// ports fix it at hello time; peer ports start at JSON and upgrade
	// when the peer's hello or ack arrives (learnPeerCodec), so it is
	// an atomic the writer loads per frame.
	codec atomic.Uint32
	// remote is the codec version the destination ADVERTISED (as
	// opposed to the negotiated minimum above). A destination that
	// never advertised anything (0) may be a pre-batch build, so
	// batch messages bound for it are split into per-item frames —
	// message-kind vocabulary, unlike framing, cannot be sniffed.
	// Destinations below CodecBinary2 additionally get publish
	// batches split (they predate the PUBBATCH kind).
	remote atomic.Uint32
	// cluster is the membership protocol version the destination
	// advertised; control frames (ping/pong/gossip) are dropped when
	// it is 0 — peers without a cluster layer must never see them.
	cluster atomic.Uint32
	// wmu serializes connection writes: normally only the writer
	// goroutine writes, but the serialized-dispatch ablation encodes
	// inline on dispatching goroutines while the writer still owns the
	// shutdown drain.
	wmu  sync.Mutex
	ch   chan wireItem
	dead chan struct{} // closed when the port is torn down mid-stream
	once sync.Once

	// stats counts frames queued toward this destination by wire kind
	// (atomic fixed-array adds — zero allocations on the frame path);
	// writeHist/clock time the encode+write stage. All three are set
	// once in addPort, before the port is visible to senders.
	stats     *obs.LinkStats
	writeHist *obs.Histogram
	clock     func() time.Time
}

func (p *tcpPort) writeCodec() WireCodec { return WireCodec(p.codec.Load()) }

// writeFrame encodes one queue item with the port's current codec
// into a pooled buffer and writes it in a single call.
func (p *tcpPort) writeFrame(it wireItem) error {
	var t0 time.Time
	if p.writeHist != nil {
		t0 = p.clock()
	}
	buf := getEncBuf()
	defer putEncBuf(buf)
	var (
		data []byte
		err  error
	)
	if it.ctrl != nil {
		data, err = MarshalFrame(CodecJSON, (*buf)[:0], it.ctrl)
	} else {
		data, err = MarshalFrame(p.writeCodec(), (*buf)[:0], &Frame{Msg: &it.msg})
	}
	*buf = data[:0]
	if err != nil {
		return err
	}
	p.wmu.Lock()
	_, err = p.conn.Write(data)
	p.wmu.Unlock()
	if p.writeHist != nil {
		p.writeHist.Observe(p.clock().Sub(t0))
	}
	return err
}

// kill marks the port dead: senders stop enqueueing and the writer
// exits without draining.
func (p *tcpPort) kill() { p.once.Do(func() { close(p.dead) }) }

// tcpServer hosts one broker behind a TCP listener.
type tcpServer struct {
	b   *broker.Broker
	ln  net.Listener
	cfg tcpConfig

	// smu is the serialized-dispatch ablation mutex (see
	// WithSerializedDispatch); unused in the concurrent mode.
	smu sync.Mutex

	mu sync.Mutex
	// +guarded_by:mu
	ports map[string]*tcpPort
	// +guarded_by:mu
	readers map[net.Conn]struct{}
	// peerCodec records, per peer broker, the highest binary wire
	// version it advertised (hello on its inbound connection, or ack
	// on our outbound one), so the outbound port to it can upgrade.
	// +guarded_by:mu
	peerCodec map[string]WireCodec
	// peerClu records, per peer broker, the cluster protocol version
	// it advertised alongside the codec.
	// +guarded_by:mu
	peerClu map[string]uint8
	// hooks are the cluster layer's peer-link callbacks (up on an
	// established outbound link, down on a lost one). Invoked on their
	// own goroutines so a callback may dial or send without deadlocking
	// against s.mu. Events are at-least-once: a replaced connection or
	// a redial can surface spurious down/up pairs, and the membership
	// layer is expected to treat them idempotently.
	// +guarded_by:mu
	hooks struct {
		up, down func(peer string)
	}
	// clusterOn flips when a control handler attaches; hellos and acks
	// advertise the cluster protocol version only while it is set.
	clusterOn atomic.Bool

	// journal/jstore are the durability layer (nil without
	// WithDataDir); recovery holds the boot-time replay stats.
	journal  *BrokerJournal
	jstore   persist.Store
	recovery RecoveryStats
	durable  bool

	// reg is the server's observability registry; the stage histograms
	// below are cached out of it so frame paths never take its lock.
	reg      *obs.Registry
	hDecode  *obs.Histogram
	hEnqueue *obs.Histogram
	hWrite   *obs.Histogram
	obsClock func() time.Time

	stopping chan struct{} // Shutdown began: stop accepting/registering
	closed   chan struct{} // hard close: abandon queued frames

	readerWg sync.WaitGroup // accept loop + per-connection readers
	writerWg sync.WaitGroup // per-port writers
	snapWg   sync.WaitGroup // periodic snapshot loop
	shutOnce sync.Once
	shutErr  error
}

// newTCPServer starts a server for the given broker on addr.
func newTCPServer(b *broker.Broker, addr string, cfg tcpConfig) (*tcpServer, error) {
	if cfg.queueLen <= 0 {
		cfg.queueLen = 256
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pubsub: listen %s: %w", addr, err)
	}
	s := &tcpServer{
		b:         b,
		ln:        ln,
		cfg:       cfg,
		ports:     make(map[string]*tcpPort),
		readers:   make(map[net.Conn]struct{}),
		peerCodec: make(map[string]WireCodec),
		peerClu:   make(map[string]uint8),
		stopping:  make(chan struct{}),
		closed:    make(chan struct{}),
	}
	s.reg = newServerRegistry(b)
	s.hDecode = s.reg.Histogram(histFrameDecode)
	s.hEnqueue = s.reg.Histogram(histFrameEnqueue)
	s.hWrite = s.reg.Histogram(histFrameWrite)
	s.obsClock = time.Now
	registerQueueDepths(s.reg, s)
	s.readerWg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// addr returns the bound listener address.
func (s *tcpServer) addr() string { return s.ln.Addr().String() }

func (s *tcpServer) metrics() Metrics { return s.b.Metrics() }

func (s *tcpServer) core() *broker.Broker { return s.b }

// errPortExists reports that a live port already serves the name.
var errPortExists = errors.New("pubsub: port already connected")

// addPort registers an outbound port and starts its writer. With
// replace=true (clients: a redial takes over the stream) any previous
// port is killed; with replace=false (peers: concurrent dials from
// ConnectPeer and the hello dial-back converge on one link) a live
// existing port wins and errPortExists is returned.
//
// Client ports (peer=false) write with the fixed codec negotiated
// from the client's hello; peer ports take whatever the peer has
// advertised so far (peerCodec, possibly upgraded later). A non-nil
// ack frame is queued ahead of any other traffic — it enters the
// channel before the port becomes visible to senders.
func (s *tcpServer) addPort(name string, conn net.Conn, replace, peer bool, clientCodec WireCodec, ack *Frame) (*tcpPort, error) {
	p := &tcpPort{
		name:      name,
		peer:      peer,
		conn:      conn,
		ch:        make(chan wireItem, s.cfg.queueLen),
		dead:      make(chan struct{}),
		stats:     s.reg.Link(name),
		writeHist: s.hWrite,
		clock:     s.obsClock,
	}
	if ack != nil {
		p.ch <- wireItem{ctrl: ack}
	}
	s.mu.Lock()
	select {
	case <-s.stopping:
		s.mu.Unlock()
		return nil, fmt.Errorf("pubsub: broker %s is shutting down", s.b.ID())
	default:
	}
	if peer {
		p.codec.Store(uint32(s.cfg.codec.negotiate(s.peerCodec[name])))
		p.remote.Store(uint32(s.peerCodec[name]))
		p.cluster.Store(uint32(s.peerClu[name]))
	} else {
		p.codec.Store(uint32(clientCodec))
		p.remote.Store(uint32(clientCodec))
	}
	if old, ok := s.ports[name]; ok {
		if !replace {
			select {
			case <-old.dead:
				// The previous link broke; take over.
			default:
				s.mu.Unlock()
				return nil, errPortExists
			}
		}
		old.kill()
	}
	s.ports[name] = p
	// Count the writer before releasing the lock: shutdown closes the
	// registered ports' queues under the same lock, so a port is never
	// registered without its writer being awaited.
	s.writerWg.Add(1)
	s.mu.Unlock()
	go s.runWriter(p)
	return p, nil
}

// runWriter drains one port's queue onto its connection. A closed
// queue (graceful shutdown) is drained to the last frame; a killed
// port (replacement, encode error, hard close) exits immediately.
func (s *tcpServer) runWriter(p *tcpPort) {
	defer s.writerWg.Done()
	defer p.conn.Close()
	for {
		select {
		case <-p.dead:
			return
		case it, ok := <-p.ch:
			if !ok {
				return
			}
			if err := p.writeFrame(it); err != nil {
				// The destination vanished; message loss on broken links
				// is the lossy-environment behavior the protocol already
				// tolerates. A lost peer link is surfaced to the cluster
				// layer so its reconnect loop can engage.
				p.kill()
				if p.peer {
					s.firePeerDown(p.name)
				}
				return
			}
		}
	}
}

// firePeerUp / firePeerDown invoke the cluster layer's link hooks on
// their own goroutine (a hook may dial or send, which takes s.mu).
// Nothing fires once shutdown began.
func (s *tcpServer) firePeerUp(id string)   { s.firePeerHook(id, true) }
func (s *tcpServer) firePeerDown(id string) { s.firePeerHook(id, false) }

func (s *tcpServer) firePeerHook(id string, up bool) {
	s.mu.Lock()
	h := s.hooks.down
	if up {
		h = s.hooks.up
	}
	s.mu.Unlock()
	kind := "peer_down"
	if up {
		kind = "peer_up"
	}
	s.reg.Flight().Record(kind, s.b.ID(), id)
	if h == nil {
		return
	}
	select {
	case <-s.stopping:
		return
	default:
	}
	go h(id)
}

// setPeerHooks registers the cluster layer's link callbacks.
func (s *tcpServer) setPeerHooks(up, down func(peer string)) {
	s.mu.Lock()
	s.hooks.up, s.hooks.down = up, down
	s.mu.Unlock()
}

// setControlHandler attaches the cluster layer's control dispatcher to
// the underlying broker and turns on the cluster advertisement for
// every subsequent hello and ack.
func (s *tcpServer) setControlHandler(h broker.ControlHandler) {
	s.b.SetControlHandler(h)
	s.clusterOn.Store(h != nil)
}

// clusterVer is the cluster protocol version to advertise right now.
func (s *tcpServer) clusterVer() uint8 {
	if s.clusterOn.Load() {
		return clusterProtoVersion
	}
	return 0
}

// peerCluster reports the cluster protocol version a peer advertised.
func (s *tcpServer) peerCluster(id string) uint8 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerClu[id]
}

// peerWireCodec reports the wire codec a peer advertised (CodecJSON
// when it never advertised one). The cluster layer gates digest
// piggybacking on it.
func (s *tcpServer) peerWireCodec(id string) WireCodec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerCodec[id]
}

// journalRef and recoveryStats expose the durability layer.
func (s *tcpServer) journalRef() *BrokerJournal           { return s.journal }
func (s *tcpServer) recoveryStats() (RecoveryStats, bool) { return s.recovery, s.durable }
func (s *tcpServer) observability() *obs.Registry         { return s.reg }

// sendPeer queues one message for a peer broker, subject to the same
// vocabulary negotiation as broker-originated traffic (legacy splits,
// control-frame gating). It reports whether a live link to the peer
// existed — delivery itself stays best-effort, like all sends.
func (s *tcpServer) sendPeer(id string, msg broker.Message) bool {
	s.mu.Lock()
	p := s.ports[id]
	s.mu.Unlock()
	if p == nil || !p.peer {
		return false
	}
	select {
	case <-p.dead:
		return false
	default:
	}
	if msg.Kind.IsControl() && p.cluster.Load() == 0 {
		// The peer has not (yet) advertised a cluster layer — either a
		// legacy build that never will, or a fresh link whose ack is
		// still in flight. Count the drop so the loss is observable; if
		// the ack later reveals a cluster layer, learnPeer re-fires the
		// peer-up hook and the membership layer re-arms its probes.
		s.b.CountControlDrop()
		return false
	}
	s.send(broker.Outbound{To: id, Msg: msg})
	return true
}

// learnPeerCodec records what a peer broker advertised it decodes and
// re-negotiates the live outbound port. The LATEST advertisement
// wins in both directions: every hello/ack comes from a live
// connection, so a peer redialing after a rollback to a JSON-only
// build (advertising nothing) downgrades the port instead of being
// sent binary frames its decoder would choke on.
func (s *tcpServer) learnPeerCodec(id string, advertised WireCodec) {
	s.learnPeer(id, advertised, 0)
}

// learnPeer records what a peer broker advertised (codec version and
// cluster protocol) and re-negotiates the live outbound port. A peer
// whose advertisement reveals a cluster layer for the first time gets
// the peer-up hook re-fired: until this moment every control frame
// toward it was dropped (sendPeer's cluster gate), so the membership
// layer must restart its probe cycle now that pings can flow.
func (s *tcpServer) learnPeer(id string, advertised WireCodec, cluster uint8) {
	s.mu.Lock()
	prevClu := s.peerClu[id]
	s.peerCodec[id] = advertised
	s.peerClu[id] = cluster
	linked := false
	if p, ok := s.ports[id]; ok {
		p.codec.Store(uint32(s.cfg.codec.negotiate(advertised)))
		p.remote.Store(uint32(advertised))
		p.cluster.Store(uint32(cluster))
		select {
		case <-p.dead:
		default:
			linked = true
		}
	}
	s.mu.Unlock()
	if linked && prevClu == 0 && cluster != 0 {
		s.firePeerUp(id)
	}
}

// send queues one outbound message. It blocks when the destination's
// queue is full (backpressure) and drops when the destination is
// unknown, dead, or the server is hard-closing — the same
// transient-absence tolerance as the old implementation, minus its
// head-of-line blocking.
//
// Messages whose kind the destination never advertised it decodes are
// split into the older frames it knows first: a peer that advertised
// no binary codec version may be a pre-batch build whose state
// machine would reject SUBBATCH/UNSUBBATCH, and one that advertised
// less than v2 predates PUBBATCH. The splits preserve per-destination
// order (one goroutine enqueues the items sequentially) and are merely
// the un-amortized form of the same protocol traffic; new JSON-pinned
// brokers receive them too, which is exactly how they promise to be
// indistinguishable from old ones. Control frames (ping/pong/gossip)
// have no older form: they are dropped toward destinations without a
// cluster layer — membership simply does not extend to them.
//
// +wirecheck:gate — this switch IS the wire-vocabulary gate: every
// frame kind above the JSON baseline in frameMinCodec must keep a
// version-checked case here (enforced by brokervet's wirecheck).
func (s *tcpServer) send(o broker.Outbound) {
	s.mu.Lock()
	p := s.ports[o.To]
	s.mu.Unlock()
	if p == nil {
		return
	}
	remote := WireCodec(p.remote.Load())
	switch o.Msg.Kind {
	case broker.MsgSubscribeBatch:
		if remote == CodecJSON {
			for _, it := range o.Msg.Subs {
				s.sendTo(p, broker.Message{Kind: broker.MsgSubscribe, SubID: it.SubID, Sub: it.Sub})
			}
			return
		}
	case broker.MsgUnsubscribeBatch:
		if remote == CodecJSON {
			for _, id := range o.Msg.SubIDs {
				s.sendTo(p, broker.Message{Kind: broker.MsgUnsubscribe, SubID: id})
			}
			return
		}
	case broker.MsgPublishBatch:
		if remote < CodecBinary2 {
			for _, it := range o.Msg.Pubs {
				s.sendTo(p, broker.Message{Kind: broker.MsgPublish, PubID: it.PubID, Pub: it.Pub})
			}
			return
		}
	case broker.MsgPing, broker.MsgPong, broker.MsgGossip:
		if p.cluster.Load() == 0 {
			s.b.CountControlDrop()
			s.reg.Flight().Record("frame_drop", s.b.ID(), o.To+" "+o.Msg.Kind.String())
			return
		}
		if o.Msg.Kind == broker.MsgGossip && o.Msg.Digest != nil && remote < CodecBinary3 {
			// Pre-v3 decoders reject gossip frames with a digest tail;
			// strip it — the peer cannot answer a sync round anyway.
			stripped := o.Msg
			stripped.Digest = nil
			s.sendTo(p, stripped)
			return
		}
		if o.Msg.Kind != broker.MsgGossip && len(o.Msg.Members) > 0 && remote < CodecBinary4 {
			// Pre-v4 decoders reject ping/pong frames with a delta
			// tail; strip the piggyback — the peer keeps learning
			// membership from full-snapshot gossip instead.
			stripped := o.Msg
			stripped.Members = nil
			s.sendTo(p, stripped)
			return
		}
	case broker.MsgPingReq, broker.MsgGossipDelta:
		if p.cluster.Load() == 0 {
			s.b.CountControlDrop()
			s.reg.Flight().Record("frame_drop", s.b.ID(), o.To+" "+o.Msg.Kind.String())
			return
		}
		if remote < CodecBinary4 {
			// The SWIM vocabulary has no older form: a pre-v4 peer is
			// never asked to relay a probe, and deltas toward it ride
			// the legacy full-snapshot gossip the cluster layer still
			// emits for exactly this case.
			return
		}
	case broker.MsgSyncRequest, broker.MsgSyncRoots:
		if remote < CodecBinary3 {
			// Sync frames have no older form: a peer that never saw our
			// digest never asks, and one that predates the vocabulary
			// must never see the kinds.
			return
		}
	case broker.MsgRouteAnnounce:
		if remote < CodecBinary5 {
			// A route announce IS a subscription announcement with a
			// rendezvous address attached; toward a peer that predates
			// the kind, send its flood form — the same items as a
			// subscribe-batch. The link then degrades to flood
			// semantics, which routed delivery is a strict subset of,
			// and the recursive send applies the older splits in turn.
			s.send(broker.Outbound{To: o.To, Msg: broker.Message{
				Kind: broker.MsgSubscribeBatch,
				Subs: o.Msg.Subs,
			}})
			return
		}
	}
	s.sendTo(p, o.Msg)
}

// sendTo queues one message onto a resolved port.
func (s *tcpServer) sendTo(p *tcpPort, msg broker.Message) {
	p.stats.Sent(int(msg.Kind))
	if s.cfg.serialized {
		// Ablation baseline: encode inline on the dispatching
		// goroutine (which holds the global mutex), exactly as the old
		// wire server did. The port's writer goroutine idles; only the
		// shutdown drain uses it.
		select {
		case <-p.dead:
			return
		default:
		}
		if err := p.writeFrame(wireItem{msg: msg}); err != nil {
			p.kill()
		}
		return
	}
	t0 := s.obsClock()
	select {
	case p.ch <- wireItem{msg: msg}:
	case <-p.dead:
	case <-s.closed:
	}
	s.hEnqueue.Observe(s.obsClock().Sub(t0))
}

// dispatch runs one inbound message through the broker and fans the
// results out to the per-port queues.
func (s *tcpServer) dispatch(from string, msg broker.Message) error {
	if s.cfg.serialized {
		s.smu.Lock()
		defer s.smu.Unlock()
	}
	outs, err := s.b.Handle(from, msg)
	if err != nil {
		return err
	}
	for _, o := range outs {
		s.send(o)
	}
	return nil
}

// dispatchPublishBatch runs a coalesced run of publish frames through
// the broker under ONE shared-lock acquisition and fans the results
// out in order.
func (s *tcpServer) dispatchPublishBatch(from string, msgs []broker.Message) error {
	outs, err := s.b.HandlePublishBatch(from, msgs)
	for _, o := range outs {
		s.send(o)
	}
	return err
}

// acceptLoop admits connections until the listener closes.
func (s *tcpServer) acceptLoop() {
	defer s.readerWg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stopping:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.readerWg.Add(1)
		go s.serveConn(conn)
	}
}

// trackReader registers an inbound connection so Shutdown can stop its
// decoder at a frame boundary. Returns false when the server is
// already stopping.
func (s *tcpServer) trackReader(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.stopping:
		return false
	default:
	}
	s.readers[conn] = struct{}{}
	return true
}

func (s *tcpServer) untrackReader(conn net.Conn) {
	s.mu.Lock()
	delete(s.readers, conn)
	s.mu.Unlock()
}

// writeJSONFrame encodes one handshake frame through a pooled buffer
// and writes it in a single call.
func writeJSONFrame(conn net.Conn, fr *Frame) error {
	buf := getEncBuf()
	defer putEncBuf(buf)
	data, err := MarshalFrame(CodecJSON, (*buf)[:0], fr)
	*buf = data[:0]
	if err != nil {
		return err
	}
	_, err = conn.Write(data)
	return err
}

// maxPublishCoalesce caps how many already-buffered publish frames a
// reader folds into one HandlePublishBatch call, bounding the latency
// a coalesced run can add ahead of a queued subscribe.
const maxPublishCoalesce = 64

// serveConn reads the hello, registers the port, answers with the
// codec-advertising ack, then feeds messages into the dispatch
// pipeline, coalescing buffered publish runs.
func (s *tcpServer) serveConn(conn net.Conn) {
	defer s.readerWg.Done()
	reader := newFrameReader(conn)
	var hello Frame
	if err := reader.read(&hello); err != nil || hello.Hello == "" {
		conn.Close()
		return
	}
	from := hello.Hello
	reader.instrument(s.hDecode, s.obsClock)
	linkStats := s.reg.Link(from)
	ack := &Frame{Ack: s.b.ID(), Codec: uint8(s.cfg.codec), Cluster: s.clusterVer()}

	var port *tcpPort
	if hello.Client {
		s.b.AttachClient(from)
		// The client's hello fixes what it decodes; the ack (queued
		// ahead of any notification) tells it what we decode.
		p, err := s.addPort(from, conn, true, false, s.cfg.codec.negotiate(WireCodec(hello.Codec)), ack)
		if err != nil {
			conn.Close()
			return
		}
		port = p
	} else {
		// Inbound peer link: the neighbor dialed us; data frames flow
		// only inward on this connection (we reply over our own dial).
		if err := s.b.ConnectNeighbor(from); err != nil {
			conn.Close()
			return
		}
		// What the peer decodes governs our outbound port to it.
		s.learnPeer(from, WireCodec(hello.Codec), hello.Cluster)
		// Answer with the ack directly (nobody else writes on an
		// inbound peer connection): its ack reader learns our codec.
		// Old peers never read this side and simply leave it buffered.
		if err := writeJSONFrame(conn, ack); err != nil {
			conn.Close()
			return
		}
		// If we have no outbound channel to this neighbor yet and it
		// told us where it listens, dial back so the link becomes
		// bidirectional without explicit two-sided configuration.
		if hello.Addr != "" {
			s.mu.Lock()
			_, have := s.ports[from]
			s.mu.Unlock()
			if !have {
				go s.connectPeer(from, hello.Addr)
			}
		}
	}
	if !s.trackReader(conn) {
		if port == nil {
			conn.Close()
		}
		return
	}
	defer s.untrackReader(conn)
	if port == nil {
		// We own the close for read-only peer connections; client
		// connections are closed by their port's writer.
		defer conn.Close()
	}
	// Note: an inbound peer stream ending does NOT fire the peer-down
	// hook. Losing dial races close redundant connections as a matter
	// of course (ConnectPeer's errPortExists path), and treating those
	// closes as link loss makes membership flap through spurious
	// down→recover→re-announce cycles. The authoritative loss signals
	// are the outbound writer failing (firePeerDown in runWriter) and
	// the cluster layer's own ping timeouts.

	fail := func() {
		if port != nil {
			port.kill()
		}
	}
	var (
		fr      Frame
		pubRun  []broker.Message
		pending bool // fr holds a frame read ahead by the coalescer
	)
	for {
		if !pending {
			if err := reader.read(&fr); err != nil {
				fail()
				return
			}
		}
		pending = false
		if fr.Msg == nil {
			continue
		}
		linkStats.Recv(int(fr.Msg.Kind))
		if fr.Msg.Kind != broker.MsgPublish || s.cfg.serialized {
			if err := s.dispatch(from, *fr.Msg); err != nil {
				fail()
				return
			}
			continue
		}
		// Publish: fold in whatever publish frames the kernel already
		// delivered, then pay the broker's shared lock once for the
		// whole run. A buffered non-publish frame ends the run and is
		// handled on the next iteration.
		pubRun = append(pubRun[:0], *fr.Msg)
		var runErr error
		for len(pubRun) < maxPublishCoalesce {
			ok, err := reader.tryRead(&fr)
			if err != nil {
				runErr = err
				break
			}
			if !ok {
				break
			}
			if fr.Msg == nil {
				continue
			}
			if fr.Msg.Kind != broker.MsgPublish {
				pending = true
				break
			}
			linkStats.Recv(int(fr.Msg.Kind))
			pubRun = append(pubRun, *fr.Msg)
		}
		if err := s.dispatchPublishBatch(from, pubRun); err != nil {
			fail()
			return
		}
		if runErr != nil {
			fail()
			return
		}
	}
}

// connectPeer dials a neighbor broker at addr, registers the overlay
// link, and starts the outbound writer — the idempotent public form
// (dialing an already-linked peer is success).
func (s *tcpServer) connectPeer(id, addr string) error {
	_, err := s.dialPeer(id, addr)
	return err
}

// dialPeer is connectPeer reporting whether THIS call established the
// outbound link: false (with nil error) when a live port already
// existed and the new connection was discarded. The distinction
// matters to the cluster reconnect loop — a no-op dial against an
// existing connection proves nothing about the peer (the connection
// may be stalled), so treating it as a recovery would let a hung peer
// flap dead→alive forever. The hello advertises what we decode; a
// goroutine watches the (otherwise silent) connection for the
// acceptor's ack so the port can upgrade to the binary codec once the
// peer has advertised it.
func (s *tcpServer) dialPeer(id, addr string) (bool, error) {
	conn, err := net.DialTimeout("tcp", addr, peerDialTimeout)
	if err != nil {
		return false, fmt.Errorf("pubsub: dial peer %s at %s: %w", id, addr, err)
	}
	hello := &Frame{Hello: s.b.ID(), Addr: s.advertiseAddr(), Codec: uint8(s.cfg.codec), Cluster: s.clusterVer()}
	if err := writeJSONFrame(conn, hello); err != nil {
		conn.Close()
		return false, fmt.Errorf("pubsub: hello to %s: %w", id, err)
	}
	if err := s.b.ConnectNeighbor(id); err != nil {
		conn.Close()
		return false, err
	}
	if _, err := s.addPort(id, conn, false, true, 0, nil); err != nil {
		conn.Close()
		if errors.Is(err, errPortExists) {
			// A concurrent dial (ours or the peer's dial-back) already
			// established the link; connecting twice is success.
			return false, nil
		}
		return false, err
	}
	// Link sync: a freshly established (or re-established) outbound
	// link starts with ONE SUBBATCH of the coverage roots for this
	// neighbor — everything the table says the peer must know. On a
	// first-boot link the table is empty and nothing is sent; after a
	// reconnect (or toward a neighbor registered while no port
	// existed) this is the healing re-announcement: the peer drops
	// what it already knows and fills the gaps, so routing state
	// converges without any transport replaying lost frames. send()
	// splits it per-item for peers that predate batch frames.
	if roots := s.b.NeighborRoots(id); len(roots) > 0 {
		s.send(broker.Outbound{To: id, Msg: broker.Message{Kind: broker.MsgSubscribeBatch, Subs: roots}})
	}
	// Tell the cluster layer the link is up.
	s.firePeerUp(id)
	// The acceptor's only traffic on this connection is its ack (old
	// peers send nothing); the goroutine exits when the port's writer
	// closes the connection.
	go func() {
		r := newFrameReader(conn)
		var fr Frame
		for {
			if err := r.read(&fr); err != nil {
				return
			}
			if fr.Ack != "" {
				s.learnPeer(id, WireCodec(fr.Codec), fr.Cluster)
			}
		}
	}()
	return true, nil
}

// peerDialTimeout bounds a single peer dial attempt so a reconnect
// loop probing a dead host cannot stall for the kernel's full connect
// timeout.
const peerDialTimeout = 3 * time.Second

// advertiseAddr returns the listen address to offer peers for
// dial-back, or "" when the listener is bound to an unspecified host
// ("[::]:7001", "0.0.0.0:7001") — advertising that would make a
// remote peer dial itself. Overlays listening on wildcard addresses
// need two-sided peer configuration, exactly as before dial-back
// existed.
func (s *tcpServer) advertiseAddr() string {
	addr := s.addr()
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return ""
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		return ""
	}
	return addr
}

// closeRead shuts the read side of a connection so its decoder stops
// at the next frame boundary while queued writes still flush.
func closeRead(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseRead()
		return
	}
	conn.Close()
}

// shutdown gracefully stops the server: no new connections, readers
// stopped at a frame boundary, in-flight messages handled, writer
// queues drained, then all connections closed. The context bounds the
// drain; on expiry remaining frames are abandoned and connections
// closed hard.
func (s *tcpServer) shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		close(s.stopping)
		s.ln.Close()
		s.mu.Lock()
		for conn := range s.readers {
			closeRead(conn)
		}
		s.mu.Unlock()

		done := make(chan struct{})
		go func() {
			s.readerWg.Wait()
			// Readers are gone: nobody enqueues anymore, so closing the
			// queues lets each writer drain to the last frame and exit.
			s.mu.Lock()
			for _, p := range s.ports {
				close(p.ch)
			}
			s.mu.Unlock()
			s.writerWg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.shutErr = ctx.Err()
			close(s.closed) // unblock senders stuck on full queues
			s.mu.Lock()
			for _, p := range s.ports {
				p.kill()
				p.conn.Close()
			}
			for conn := range s.readers {
				conn.Close()
			}
			s.mu.Unlock()
			<-done
		}
		// Drain complete: every in-flight message has been applied, so
		// the final snapshot captures the broker's last state and the
		// next boot replays nothing from the journal.
		s.snapWg.Wait()
		if s.journal != nil {
			if err := s.journal.Snapshot(); err != nil && s.shutErr == nil {
				s.shutErr = err
			}
		}
		if s.jstore != nil {
			if err := s.jstore.Close(); err != nil && s.shutErr == nil {
				s.shutErr = err
			}
		}
	})
	return s.shutErr
}

// snapshotLoop compacts the journal on a fixed cadence until
// shutdown.
func (s *tcpServer) snapshotLoop(interval time.Duration) {
	defer s.snapWg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopping:
			return
		case <-t.C:
			s.journal.Snapshot()
		}
	}
}

// ListenBroker starts one broker listening on addr (e.g.
// "127.0.0.1:0" or ":7001") — the standalone daemon form used by
// cmd/brokerd. Peer links are added with Broker.ConnectPeer; clients
// connect with Dial. Stop it with Broker.Shutdown.
func ListenBroker(id, addr string, policy Policy, cfg Config, opts ...TCPOption) (*Broker, error) {
	sp, err := policy.toStore()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	b, err := broker.New(id, sp,
		broker.WithSeed(cfg.Seed),
		broker.WithTableOptions(cfg.TableOptions()...))
	if err != nil {
		return nil, err
	}
	tc := defaultTCPConfig()
	for _, opt := range opts {
		opt(&tc)
	}
	var (
		st  persist.Store
		j   *BrokerJournal
		rec RecoveryStats
	)
	if tc.dataDir != "" {
		ds, err := persist.Open(tc.dataDir)
		if err != nil {
			return nil, err
		}
		rec, err = RecoverBroker(b, ds)
		if err != nil {
			ds.Close()
			return nil, fmt.Errorf("pubsub: recover %s: %w", tc.dataDir, err)
		}
		j = NewBrokerJournal(b, ds, tc.syncEvery)
		b.SetJournal(j)
		st = ds
	}
	srv, err := newTCPServer(b, addr, tc)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, err
	}
	srv.journal, srv.jstore, srv.recovery, srv.durable = j, st, rec, st != nil
	if srv.durable {
		registerRecoveryStats(srv.reg, rec)
	}
	if j != nil {
		iv := tc.snapInterval
		if iv <= 0 {
			iv = 30 * time.Second
		}
		srv.snapWg.Add(1)
		go srv.snapshotLoop(iv)
	}
	return &Broker{id: id, impl: srv}, nil
}

// tcpServer implements brokerImpl directly.
var _ brokerImpl = (*tcpServer)(nil)

// TCPTransport hosts the overlay on real sockets within one process:
// every broker gets its own loopback listener, Connect dials both
// directions, and Open dials a real client connection. It exists so
// the same program (and the same tests) can run against the
// deployable stack; multi-process deployments use ListenBroker and
// Dial directly.
type TCPTransport struct {
	policy    Policy
	cfg       Config
	opts      []TCPOption
	dialCodec WireCodec // resolved client-side codec cap for Open

	mu       sync.Mutex
	brokers  map[string]*Broker
	clients  []*Client
	shutdown bool
}

// NewTCPTransport creates an empty TCP overlay with the given coverage
// policy and tuning. Brokers listen on ephemeral loopback ports.
// Config.DropRate/DupRate are a simulator-only feature and rejected
// here: TCP links get their loss from the real network.
func NewTCPTransport(policy Policy, cfg Config, opts ...TCPOption) (*TCPTransport, error) {
	if _, err := policy.toStore(); err != nil {
		return nil, err
	}
	if cfg.DropRate > 0 || cfg.DupRate > 0 {
		return nil, fmt.Errorf("pubsub: failure injection is simulator-only; TCP transports take real losses")
	}
	tc := defaultTCPConfig()
	for _, opt := range opts {
		opt(&tc)
	}
	return &TCPTransport{
		policy:    policy,
		cfg:       cfg,
		opts:      opts,
		dialCodec: tc.dialCodec,
		brokers:   make(map[string]*Broker),
	}, nil
}

var _ Transport = (*TCPTransport)(nil)

// AddBroker creates a broker node listening on an ephemeral loopback
// port.
func (t *TCPTransport) AddBroker(id string) (*Broker, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.shutdown {
		return nil, fmt.Errorf("pubsub: transport is shut down")
	}
	if _, dup := t.brokers[id]; dup {
		return nil, fmt.Errorf("pubsub: duplicate broker %s", id)
	}
	b, err := ListenBroker(id, "127.0.0.1:0", t.policy, t.cfg, t.opts...)
	if err != nil {
		return nil, err
	}
	t.brokers[id] = b
	return b, nil
}

// Broker returns a previously added broker.
func (t *TCPTransport) Broker(id string) (*Broker, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.brokers[id]
	return b, ok
}

// Brokers lists broker IDs, sorted.
func (t *TCPTransport) Brokers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.brokers))
	for id := range t.brokers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Connect links two brokers bidirectionally: each side dials the
// other.
func (t *TCPTransport) Connect(a, b string) error {
	t.mu.Lock()
	ba, oka := t.brokers[a]
	bb, okb := t.brokers[b]
	t.mu.Unlock()
	if !oka {
		return fmt.Errorf("pubsub: unknown broker %s", a)
	}
	if !okb {
		return fmt.Errorf("pubsub: unknown broker %s", b)
	}
	if err := ba.ConnectPeer(b, bb.Addr()); err != nil {
		return err
	}
	return bb.ConnectPeer(a, ba.Addr())
}

// Open dials a client connection to the given broker.
func (t *TCPTransport) Open(ctx context.Context, clientName, brokerID string) (*Client, error) {
	t.mu.Lock()
	b, ok := t.brokers[brokerID]
	down := t.shutdown
	t.mu.Unlock()
	if down {
		return nil, fmt.Errorf("pubsub: transport is shut down")
	}
	if !ok {
		return nil, fmt.Errorf("pubsub: unknown broker %s", brokerID)
	}
	c, err := Dial(ctx, b.Addr(), clientName, WithDialCodec(t.dialCodec))
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.shutdown {
		// Shutdown began while we were dialing and has already
		// snapshotted t.clients; close the latecomer instead of
		// leaking its connection and pump goroutine.
		t.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("pubsub: transport is shut down")
	}
	t.clients = append(t.clients, c)
	t.mu.Unlock()
	return c, nil
}

// Settle polls the summed broker metrics until they are unchanged over
// a few consecutive polls — the TCP stand-in for the simulator's
// run-to-quiescence. It only observes this transport's brokers, so it
// cannot vouch for overlays spanning processes.
func (t *TCPTransport) Settle(ctx context.Context) error {
	const (
		interval = 10 * time.Millisecond
		stable   = 5 // consecutive unchanged polls to declare quiescence
	)
	var last Metrics
	streak := 0
	for first := true; ; first = false {
		if err := ctx.Err(); err != nil {
			return err
		}
		var sum Metrics
		t.mu.Lock()
		for _, b := range t.brokers {
			sum.Add(b.Metrics())
		}
		t.mu.Unlock()
		if !first && sum == last {
			streak++
			if streak >= stable {
				return nil
			}
		} else {
			streak = 0
		}
		last = sum
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Shutdown closes every client and gracefully stops every broker
// within the context's deadline.
func (t *TCPTransport) Shutdown(ctx context.Context) error {
	t.mu.Lock()
	t.shutdown = true
	clients := t.clients
	brokers := make([]*Broker, 0, len(t.brokers))
	for _, b := range t.brokers {
		brokers = append(brokers, b)
	}
	t.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	var firstErr error
	for _, b := range brokers {
		if err := b.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DialOption tunes a client connection.
type DialOption func(*dialConfig)

type dialConfig struct {
	codec WireCodec
}

// WithDialCodec caps the codec the client advertises and sends
// (default CodecBinary2). CodecJSON makes the client behave exactly
// like a pre-binary build: it never advertises the binary format (so
// the broker sends it JSON) and never upgrades its own sends;
// CodecBinary pins the PR-4 vocabulary (publish batches split).
func WithDialCodec(c WireCodec) DialOption {
	return func(cfg *dialConfig) { cfg.codec = c }
}

// tcpClient is the socket side of a Client.
type tcpClient struct {
	conn net.Conn
	mu   sync.Mutex // serializes writes
	// maxCodec is what we are willing to send; wcodec is what we
	// actually send — JSON until the broker's ack advertises that it
	// decodes binary (readLoop stores the upgrade).
	maxCodec WireCodec
	wcodec   atomic.Uint32
	// acked closes when the broker's ack arrives; remoteVer is the
	// codec version it advertised. A broker that never acks is a
	// pre-binary build, so batch messages are split into the per-item
	// frames its state machine knows (see send).
	ackOnce   sync.Once
	acked     chan struct{}
	remoteVer atomic.Uint32
}

// legacyAckWait bounds how long a batch send waits for the broker's
// ack before concluding the broker predates it.
const legacyAckWait = 3 * time.Second

// supportsVocab reports whether the broker advertised at least the
// given wire version — the vocabulary gate for batch kinds (v1) and
// publish-batch (v2) — waiting (bounded by the context and a fixed
// cap) for the handshake ack on a fresh connection. Like the
// broker-side split, a server that advertised no codec version is
// treated as predating the kind — JSON-pinned new brokers accept the
// per-item form by design.
func (c *tcpClient) supportsVocab(ctx context.Context, minVer WireCodec) bool {
	timeout := legacyAckWait
	if d, ok := ctx.Deadline(); ok {
		// Leave at least half the caller's budget for the write that
		// follows the verdict.
		if until := time.Until(d) / 2; until < timeout {
			timeout = until
		}
	}
	select {
	case <-c.acked:
		return WireCodec(c.remoteVer.Load()) >= minVer
	case <-time.After(timeout):
		return false
	case <-ctx.Done():
		return false
	}
}

// Dial connects a client to a broker's listen address — the
// cross-process form of Transport.Open, used by cmd/psclient. The
// name identifies the client on its broker; redialing with the same
// name replaces the previous connection and resumes its
// subscriptions.
func Dial(ctx context.Context, addr, name string, opts ...DialOption) (*Client, error) {
	if name == "" {
		return nil, fmt.Errorf("pubsub: empty client name")
	}
	cfg := dialConfig{codec: CodecBinary}
	for _, opt := range opts {
		opt(&cfg)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pubsub: dial %s: %w", addr, err)
	}
	tc := &tcpClient{conn: conn, maxCodec: cfg.codec, acked: make(chan struct{})}
	if err := writeJSONFrame(conn, &Frame{Hello: name, Client: true, Codec: uint8(cfg.codec)}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("pubsub: hello: %w", err)
	}
	c := &Client{name: name, impl: tc, q: newNotifyQueue()}
	go tc.readLoop(c.q)
	return c, nil
}

// send encodes one message with the negotiated codec into a pooled
// buffer and writes it in one call, honoring the context's deadline.
// A batch message bound for a broker that never advertised a codec
// version is re-encoded as its per-item frames — in the same buffer
// and the same write, so ordering stays atomic.
func (c *tcpClient) send(ctx context.Context, msg broker.Message) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var split bool
	switch msg.Kind { // waits for the ack, which may upgrade wcodec
	case broker.MsgSubscribeBatch, broker.MsgUnsubscribeBatch:
		split = !c.supportsVocab(ctx, CodecBinary)
	case broker.MsgPublishBatch:
		split = !c.supportsVocab(ctx, CodecBinary2)
	}
	codec := WireCodec(c.wcodec.Load())
	buf := getEncBuf()
	defer putEncBuf(buf)
	var (
		data []byte
		err  error
	)
	switch {
	case msg.Kind == broker.MsgSubscribeBatch && split:
		data = (*buf)[:0]
		for _, it := range msg.Subs {
			m := broker.Message{Kind: broker.MsgSubscribe, SubID: it.SubID, Sub: it.Sub}
			if data, err = MarshalFrame(codec, data, &Frame{Msg: &m}); err != nil {
				break
			}
		}
	case msg.Kind == broker.MsgUnsubscribeBatch && split:
		data = (*buf)[:0]
		for _, id := range msg.SubIDs {
			m := broker.Message{Kind: broker.MsgUnsubscribe, SubID: id}
			if data, err = MarshalFrame(codec, data, &Frame{Msg: &m}); err != nil {
				break
			}
		}
	case msg.Kind == broker.MsgPublishBatch && split:
		data = (*buf)[:0]
		for _, it := range msg.Pubs {
			m := broker.Message{Kind: broker.MsgPublish, PubID: it.PubID, Pub: it.Pub}
			if data, err = MarshalFrame(codec, data, &Frame{Msg: &m}); err != nil {
				break
			}
		}
	default:
		data, err = MarshalFrame(codec, (*buf)[:0], &Frame{Msg: &msg})
	}
	*buf = data[:0]
	if err != nil {
		return fmt.Errorf("pubsub: send: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := ctx.Deadline(); ok {
		c.conn.SetWriteDeadline(d)
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	if _, err := c.conn.Write(data); err != nil {
		return fmt.Errorf("pubsub: send: %w", err)
	}
	return nil
}

// readLoop handles the broker's ack (codec upgrade) and feeds pushed
// notifications into the queue until the connection closes.
func (c *tcpClient) readLoop(q *notifyQueue) {
	r := newFrameReader(c.conn)
	var fr Frame
	for {
		if err := r.read(&fr); err != nil {
			q.finish()
			return
		}
		if fr.Ack != "" {
			c.remoteVer.Store(uint32(fr.Codec))
			c.wcodec.Store(uint32(c.maxCodec.negotiate(WireCodec(fr.Codec))))
			c.ackOnce.Do(func() { close(c.acked) })
			continue
		}
		if fr.Msg != nil && fr.Msg.Kind == broker.MsgNotify {
			q.push(Notification{SubID: fr.Msg.SubID, PubID: fr.Msg.PubID, Pub: fr.Msg.Pub})
		}
	}
}

func (c *tcpClient) close() error { return c.conn.Close() }
