package cluster

// Simulator attachment: membership over internal/simnet, with manual
// ticks and deterministic partitions — how the healing protocol is
// tested without sockets.

import (
	"fmt"

	"probsum/internal/broker"
	"probsum/internal/simnet"
)

// simLink adapts a simulator broker to the Link interface. Sends are
// injected onto the simulated links (crossing the same partitions and
// failure injection as routed traffic) and processed on the caller's
// next Network.Run; "dialing" succeeds exactly when the link is not
// partitioned, mirroring what a TCP dial would experience.
type simLink struct {
	net *simnet.Network
	id  string
}

func (l *simLink) Self() string { return l.id }

func (l *simLink) Send(peer string, msg broker.Message) bool {
	l.net.Inject(l.id, broker.Outbound{To: peer, Msg: msg})
	return true
}

func (l *simLink) Connect(peer, addr string, done func(established bool, err error)) {
	// Inline completion keeps simulated runs single-threaded and
	// deterministic. A successful simulated dial always counts as
	// establishing the link: there is no connection object whose
	// staleness the result could hide.
	if l.net.Crashed(peer) {
		done(false, fmt.Errorf("cluster: broker %s is down", peer))
		return
	}
	if l.net.LinkUp(l.id, peer) {
		done(true, nil)
		return
	}
	done(false, fmt.Errorf("cluster: link %s–%s is partitioned", l.id, peer))
}

func (l *simLink) Roots(peer string) []broker.BatchSub {
	b := l.net.Broker(l.id)
	if b == nil {
		return nil
	}
	return b.NeighborRoots(peer)
}

func (l *simLink) ClusterCapable(peer string) bool { return true }

// Simulated "dials" are logical (no connection is re-established and
// nothing is replayed), so the node itself must send the healing
// re-announcement.
func (l *simLink) SyncOnConnect() bool { return false }

// Simulated brokers all speak the full vocabulary; the digest is
// gated only on the coverage table existing.
func (l *simLink) Digest(peer string) (broker.LinkDigest, bool) {
	b := l.net.Broker(l.id)
	if b == nil {
		return broker.LinkDigest{}, false
	}
	return b.LinkDigest(peer)
}

// Simulated brokers all speak wire v4.
func (l *simLink) DeltaCapable(peer string) bool { return true }

// NewSimNode binds a membership node to a broker that already exists
// in a simulator network. No background ticker starts: the test (or
// experiment) advances the injected clock and calls Tick, then runs
// the network — every membership transition happens at an exactly
// reproducible step. cfg.Clock is forced to the given clock.
func NewSimNode(net *simnet.Network, id string, clock *simnet.Clock, cfg Config) (*Node, error) {
	b := net.Broker(id)
	if b == nil {
		return nil, fmt.Errorf("cluster: unknown simulator broker %s", id)
	}
	cfg.Clock = clock.Now
	cfg = cfg.withDefaults()
	n := NewNode(Member{ID: id, Addr: id, Incarnation: cfg.Incarnation}, &simLink{net: net, id: id}, cfg)
	b.SetControlHandler(n.HandleControl)
	return n, nil
}
