package cluster

// Node.Metrics returns a locked copy of the counters, so scraping it
// (directly, or through the observability registry's callbacks) while
// the protocol runs must be race-free and never observe torn state.
// This test is a -race net: mutators drive Tick and HandleControl
// while readers hammer Metrics, AliveCount, and a registry scrape.

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probsum/internal/broker"
	"probsum/internal/obs"
)

// discardLink is a stateless Link: sends vanish, connects succeed.
// Having no state of its own, it is safe from every goroutine.
type discardLink struct{ self string }

func (l *discardLink) Self() string                     { return l.self }
func (l *discardLink) Send(string, broker.Message) bool { return true }
func (l *discardLink) Connect(_, _ string, done func(bool, error)) {
	done(true, nil)
}
func (l *discardLink) Roots(string) []broker.BatchSub          { return nil }
func (l *discardLink) ClusterCapable(string) bool              { return true }
func (l *discardLink) SyncOnConnect() bool                     { return true }
func (l *discardLink) Digest(string) (broker.LinkDigest, bool) { return broker.LinkDigest{}, false }
func (l *discardLink) DeltaCapable(string) bool                { return true }

func TestNodeMetricsConcurrent(t *testing.T) {
	var nanos atomic.Int64
	n := NewNode(Member{ID: "A"}, &discardLink{self: "A"}, Config{
		Clock: func() time.Time { return time.Unix(0, nanos.Load()) },
	})
	n.AddMember(Member{ID: "B", Addr: "b:1"}, true)

	reg := obs.NewRegistry(nil)
	n.RegisterObservability(reg)

	const iters = 500
	var mutators sync.WaitGroup
	mutators.Add(2)
	go func() {
		defer mutators.Done()
		for i := 0; i < iters; i++ {
			nanos.Add(int64(time.Second))
			n.Tick()
		}
	}()
	go func() {
		defer mutators.Done()
		for i := 0; i < iters; i++ {
			n.HandleControl("B", broker.Message{Kind: broker.MsgPing, Seq: uint64(i)})
			n.HandleControl("B", broker.Message{Kind: broker.MsgGossip, Members: []broker.MemberInfo{
				{ID: "B", Incarnation: uint64(i % 5), State: broker.MemberAlive},
			}})
		}
	}()

	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = n.Metrics()
				_, _ = n.AliveCount()
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	mutators.Wait()
	close(done)
	readers.Wait()

	if m := n.Metrics(); m.PingsSent == 0 {
		t.Error("ticking node sent no pings")
	}
	out := reg.JSON()
	if out.Counters["cluster_pings_sent"] == 0 {
		t.Error("registry scrape missing cluster_pings_sent")
	}
	if out.Gauges["cluster_members_total"] < 2 {
		t.Errorf("cluster_members_total = %d, want >= 2", out.Gauges["cluster_members_total"])
	}
}
