// Package cluster makes broker overlays self-assembling and
// self-healing: a cluster.Node wraps a pub/sub broker with a member
// list, an anti-entropy gossip of that list, a ping-based failure
// detector, and a reconnect loop that re-dials dead peers with
// jittered backoff and — on recovery — re-announces the local
// coverage roots as one SUBBATCH so routing state converges again
// (see DESIGN.md §10).
//
// The membership machinery is deliberately transport-free: every
// time-driven decision happens in Node.Tick against an injected clock,
// and every wire interaction goes through the small Link interface.
// Attach binds a node to a TCP broker (real sockets, a background
// ticker); NewSimNode binds one to a simulator broker (manual ticks,
// deterministic partitions), which is how the healing protocol is
// tested without sockets.
package cluster

import (
	"fmt"
	"time"

	"probsum/internal/broker"
)

// State is a member's health as seen by the local node.
type State uint8

// Member states. The order is the merge severity: at equal
// incarnation a more severe claim wins (dead > suspect > alive),
// matching SWIM-style rumor ordering.
const (
	// StateAlive members answer pings (or have not yet missed enough).
	StateAlive State = iota
	// StateSuspect members missed pings (or their link dropped) and
	// are on the countdown to dead.
	StateSuspect
	// StateDead members failed the suspect timeout; the reconnect loop
	// re-dials them with backoff until they come back.
	StateDead
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Member is one entry of the member list: identity, dialable address,
// and the (incarnation, state) pair that orders gossip claims.
type Member struct {
	ID   string
	Addr string
	// Incarnation orders claims about this member: a claim at a higher
	// incarnation supersedes any claim at a lower one. It bumps when a
	// member refutes a death rumor about itself, and — a deliberate
	// deviation from strict SWIM — when a node DIRECTLY observes a
	// dead member answer again (observer-assisted refutation), so a
	// recovery propagates through gossip without waiting for the
	// member to learn it was declared dead.
	Incarnation uint64
	State       State
}

// wire converts a member to its gossip-frame form.
func (m Member) wire() broker.MemberInfo {
	return broker.MemberInfo{ID: m.ID, Addr: m.Addr, Incarnation: m.Incarnation, State: uint8(m.State)}
}

// memberFromWire converts a gossip-frame record, clamping unknown
// states from newer builds to dead (the conservative reading: it
// triggers probing, never suppresses it).
func memberFromWire(mi broker.MemberInfo) Member {
	s := State(mi.State)
	if s > StateDead {
		s = StateDead
	}
	return Member{ID: mi.ID, Addr: mi.Addr, Incarnation: mi.Incarnation, State: s}
}

// supersedes reports whether claim a beats claim b about the same
// member: higher incarnation wins outright; at equal incarnation the
// more severe state wins.
func supersedes(a, b Member) bool {
	if a.Incarnation != b.Incarnation {
		return a.Incarnation > b.Incarnation
	}
	return a.State > b.State
}

// memberState is the local bookkeeping around one member: the
// gossiped record plus everything the failure detector and reconnect
// loop need.
type memberState struct {
	Member
	// linked marks members this node maintains an overlay link to
	// (topology neighbors, or every discovered member in mesh mode).
	// Unlinked members are tracked by gossip only.
	linked bool
	// linkUp mirrors the transport link: pings flow only while it is
	// up, reconnects only while it is down.
	linkUp bool
	// lossy records that frames toward this member may have been lost
	// (its link died, or it was declared dead) — the trigger for
	// re-announcing the coverage roots on the next successful contact.
	lossy bool
	// synced records that the full membership snapshot went out over
	// the current link incarnation. It is cleared on every down→up
	// transition and on link loss; while clear, Tick pushes a full
	// gossip frame as soon as the peer is known cluster-capable (the
	// capability is learned asynchronously from the peer's ack, so the
	// push must retry rather than fire once at link-up). Steady-state
	// dissemination after that first exchange is delta-only.
	synced bool

	suspectSince time.Time // when the state became suspect
	lastPing     time.Time
	// lastSyncReply rate-limits anti-entropy: a full-snapshot push
	// answering this member's mismatched view hash goes out at most
	// once per GossipEvery.
	lastSyncReply time.Time
	awaiting      int    // pings sent since the last pong
	seq           uint64 // ping sequence counter

	dialing  bool
	nextDial time.Time
	backoff  time.Duration
}
