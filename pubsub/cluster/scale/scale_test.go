package scale

import "testing"

// TestScaleSmall pins the harness mechanics at a size every CI run
// affords: convergence within the round budget, steady state with
// zero full-snapshot frames, and bounded per-member traffic.
func TestScaleSmall(t *testing.T) {
	rep, err := Run(Config{N: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConvergedRound > 20 {
		t.Fatalf("n=100 took %d rounds to converge, want ≤ 20", rep.ConvergedRound)
	}
	if rep.SteadyFullGossipFrames != 0 {
		t.Fatalf("steady state sent %d full-snapshot frames, want 0 (delta dissemination incomplete)", rep.SteadyFullGossipFrames)
	}
	if rep.SteadyDeltaFrames == 0 {
		t.Fatal("steady state sent no delta frames — the gossip loop is not running")
	}
	if rep.SteadyBytesPerMemberRound > 4096 {
		t.Fatalf("steady-state traffic %.0f bytes/member/round, want bounded ≤ 4096", rep.SteadyBytesPerMemberRound)
	}
}

// TestScaleDeterministic pins reproducibility: the same seed yields
// the identical report (every random choice flows from Config.Seed
// and the manual clock), and a different seed still converges.
func TestScaleDeterministic(t *testing.T) {
	a, err := Run(Config{N: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{N: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different reports:\n  %+v\n  %+v", a, b)
	}
	if _, err := Run(Config{N: 100, Seed: 43}); err != nil {
		t.Fatal(err)
	}
}

// TestScaleDeltaCheaperThanLegacy pins the point of the v4 protocol:
// at the same size and seed, delta dissemination's steady state costs
// a small fraction of the full-snapshot oracle's.
func TestScaleDeltaCheaperThanLegacy(t *testing.T) {
	delta, err := Run(Config{N: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Run(Config{N: 100, Seed: 7, LegacyGossip: true})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.SteadyFullGossipFrames == 0 {
		t.Fatal("legacy run sent no full gossip — oracle knob broken")
	}
	if delta.SteadyBytesPerMemberRound*4 > legacy.SteadyBytesPerMemberRound {
		t.Fatalf("delta steady state (%.0f B/member/round) not at least 4x cheaper than legacy (%.0f)",
			delta.SteadyBytesPerMemberRound, legacy.SteadyBytesPerMemberRound)
	}
}
