package scale

import (
	"reflect"
	"testing"
)

// TestScaleSmall pins the harness mechanics at a size every CI run
// affords: convergence within the round budget, steady state with
// zero full-snapshot frames, and bounded per-member traffic.
func TestScaleSmall(t *testing.T) {
	rep, err := Run(Config{N: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConvergedRound > 20 {
		t.Fatalf("n=100 took %d rounds to converge, want ≤ 20", rep.ConvergedRound)
	}
	if rep.SteadyFullGossipFrames != 0 {
		t.Fatalf("steady state sent %d full-snapshot frames, want 0 (delta dissemination incomplete)", rep.SteadyFullGossipFrames)
	}
	if rep.SteadyDeltaFrames == 0 {
		t.Fatal("steady state sent no delta frames — the gossip loop is not running")
	}
	if rep.SteadyBytesPerMemberRound > 4096 {
		t.Fatalf("steady-state traffic %.0f bytes/member/round, want bounded ≤ 4096", rep.SteadyBytesPerMemberRound)
	}
	// The per-kind traffic profile must cover the protocol's control
	// kinds: a membership-only run lives on pings, pongs, and deltas.
	for _, kind := range []string{"ping", "pong", "gossip-delta"} {
		if rep.FramesByKind[kind] == 0 {
			t.Errorf("frames by kind missing %q: %v", kind, rep.FramesByKind)
		}
	}
}

// TestScaleDeterministic pins reproducibility: the same seed yields
// the identical report (every random choice flows from Config.Seed
// and the manual clock), and a different seed still converges.
func TestScaleDeterministic(t *testing.T) {
	a, err := Run(Config{N: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{N: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different reports:\n  %+v\n  %+v", a, b)
	}
	if _, err := Run(Config{N: 100, Seed: 43}); err != nil {
		t.Fatal(err)
	}
}

// TestScaleRoutedBeatsFlood pins the point of rendezvous routing: at
// the same size, seed, and operation schedule, routed subscriptions
// cost measurably fewer announcement frames per link than flooding —
// while delivering exactly the same notifications to exactly the same
// clients (the flood run is the delivery oracle). Sized at n=200 with
// enough subscriptions for coverage suppression to bite: this exact
// configuration caught the cycle-gradient delivery loss fixed by
// Broker.recordDupPathLocked, so it stays the regression net for it.
func TestScaleRoutedBeatsFlood(t *testing.T) {
	flood, err := Run(Config{N: 200, Seed: 1, Subs: 100, Pubs: 100})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := Run(Config{N: 200, Seed: 1, Subs: 100, Pubs: 100, Routed: true})
	if err != nil {
		t.Fatal(err)
	}
	if flood.SubFrames == 0 || flood.Deliveries == 0 {
		t.Fatalf("flood oracle did no work: %+v", flood)
	}
	if routed.RouteEntries == 0 {
		t.Fatal("routed run installed no route-table entries — router not engaged")
	}
	if flood.RouteEntries != 0 {
		t.Fatalf("flood run installed %d route entries, want 0", flood.RouteEntries)
	}
	if routed.Deliveries != flood.Deliveries || routed.DeliveryHash != flood.DeliveryHash {
		t.Fatalf("delivery divergence: routed %d (%#x) vs flood %d (%#x)",
			routed.Deliveries, routed.DeliveryHash, flood.Deliveries, flood.DeliveryHash)
	}
	if routed.SubFramesPerLink*2 > flood.SubFramesPerLink {
		t.Fatalf("routed sub frames/link %.2f not at least 2x below flood %.2f",
			routed.SubFramesPerLink, flood.SubFramesPerLink)
	}
}

// TestScaleDeltaCheaperThanLegacy pins the point of the v4 protocol:
// at the same size and seed, delta dissemination's steady state costs
// a small fraction of the full-snapshot oracle's.
func TestScaleDeltaCheaperThanLegacy(t *testing.T) {
	delta, err := Run(Config{N: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Run(Config{N: 100, Seed: 7, LegacyGossip: true})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.SteadyFullGossipFrames == 0 {
		t.Fatal("legacy run sent no full gossip — oracle knob broken")
	}
	if delta.SteadyBytesPerMemberRound*4 > legacy.SteadyBytesPerMemberRound {
		t.Fatalf("delta steady state (%.0f B/member/round) not at least 4x cheaper than legacy (%.0f)",
			delta.SteadyBytesPerMemberRound, legacy.SteadyBytesPerMemberRound)
	}
}
