// Package scale is a deterministic membership-at-scale harness: it
// runs hundreds to thousands of cluster.Node instances over a pure
// in-memory frame router (no brokers, no sockets, no goroutines) and
// measures what the paper's evaluation cares about at that size —
// how many protocol rounds a sparse overlay needs before every node
// sees every member alive, and how many gossip bytes per member per
// round the steady state costs once it has.
//
// The overlay is a ring plus a few pseudo-random chord links per node
// (a small-world graph: O(log n) diameter at constant degree), the
// clock is a manual variable advanced one PingEvery per round, and
// every random choice derives from Config.Seed — the same seed always
// produces the same round-by-round trace, which is what lets CI gate
// on the numbers.
package scale

import (
	"fmt"
	"math/rand/v2"
	"time"

	"probsum/internal/broker"
	"probsum/internal/interval"
	"probsum/internal/store"
	"probsum/internal/subscription"
	"probsum/pubsub/cluster"
)

// Config sizes one scale run. Zero values select the noted defaults.
type Config struct {
	// N is the member count (default 200).
	N int
	// Chords is the number of extra pseudo-random overlay links per
	// node beyond the ring (default 2; degree ≈ 2 + 2·Chords).
	Chords int
	// Seed drives every random choice of the run (default 1).
	Seed uint64
	// MaxRounds bounds the convergence phase (default 200): a run
	// that has not converged by then fails.
	MaxRounds int
	// SteadyRounds is the post-convergence measurement window
	// (default 20).
	SteadyRounds int
	// LegacyGossip runs the oracle protocol (periodic full-snapshot
	// frames, no deltas) for comparison runs.
	LegacyGossip bool
	// Subs injects that many client subscriptions after convergence
	// and counts the subscription-announcement frames each broker link
	// carries (default 0: membership-only run).
	Subs int
	// Pubs publishes that many probe publications through injected
	// subscriptions and records the delivery set (default 0; needs
	// Subs > 0).
	Pubs int
	// Routed attaches a rendezvous router to every broker, so
	// subscriptions route toward their cell owners instead of flooding
	// every link. A flood run of the same seed is the oracle: its
	// DeliveryHash must match and its SubFramesPerLink is the baseline
	// structured routing has to beat.
	Routed bool
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 200
	}
	if c.Chords == 0 {
		c.Chords = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 200
	}
	if c.SteadyRounds == 0 {
		c.SteadyRounds = 20
	}
	return c
}

// Report is what one run measured.
type Report struct {
	// N and Links describe the graph: member count and undirected
	// overlay links built.
	N     int
	Links int
	// MaxDegree is the largest per-node overlay degree (the route
	// table a node maintains links for stays this sparse even though
	// its member map grows to N).
	MaxDegree int
	// ConvergedRound is the first round after which every node saw
	// every member alive (rounds are PingEvery apart).
	ConvergedRound int
	// ConvergedTime is the simulated wall clock of convergence.
	ConvergedTime time.Duration
	// SteadyBytesPerMemberRound is the steady-state gossip cost:
	// control bytes sent per member per round, averaged over the
	// measurement window.
	SteadyBytesPerMemberRound float64
	// SteadyFullGossipFrames counts full-snapshot membership frames
	// sent during the steady window — zero when delta dissemination
	// is doing its job.
	SteadyFullGossipFrames uint64
	// SteadyDeltaFrames counts bounded delta frames sent during the
	// steady window.
	SteadyDeltaFrames uint64
	// TotalControlBytes is the cumulative control-plane traffic of
	// the whole run, bootstrap included.
	TotalControlBytes uint64
	// SubFrames counts the subscription-announcement frames (SUB,
	// SUBBATCH, route-announce) that crossed broker links during the
	// subscription phase; SubFramesPerLink is the same count per
	// directed overlay link — the headline routing-vs-flood metric.
	SubFrames        uint64
	SubFramesPerLink float64
	// RouteTables / RouteEntries sum the routed per-(link, target)
	// coverage tables and their entries across brokers (zero in flood
	// mode).
	RouteTables  int
	RouteEntries int
	// Deliveries counts probe notifications reaching clients;
	// DeliveryHash folds every (client, sub, pub) delivery
	// order-independently. A routed run and the flood run of the same
	// seed must agree on both — the delivery-equivalence gate.
	Deliveries   int
	DeliveryHash uint64
	// FramesByKind counts every frame the router carried over the whole
	// run, keyed by wire kind name — the per-kind traffic profile the
	// observability layer exposes per link on real transports, summed
	// across the simulated overlay here.
	FramesByKind map[string]uint64
}

// frame is one in-flight control message.
type frame struct {
	from, to string
	msg      broker.Message
}

// harness owns the nodes and the frame router. Everything is
// single-threaded: Tick and HandleControl run on the caller's
// goroutine, sends append to the queue, and the round loop drains it
// to empty (delta budgets guarantee the drain terminates).
type harness struct {
	ids     []string
	nodes   []*cluster.Node
	brokers []*broker.Broker
	index   map[string]int
	queue   []frame
	now     time.Time
	err     error // first broker error; deliver stops on it

	subFrames    uint64
	deliveries   int
	deliveryHash uint64
	framesByKind map[string]uint64
}

// link adapts one harness slot to cluster.Link. Connects succeed
// inline (the graph has no partitions — this harness measures cost,
// not healing, which the chaos and partition suites cover).
type link struct {
	h  *harness
	id string
}

func (l *link) Self() string { return l.id }

func (l *link) Send(peer string, msg broker.Message) bool {
	l.h.queue = append(l.h.queue, frame{l.id, peer, msg})
	return true
}

func (l *link) Connect(peer, addr string, done func(established bool, err error)) {
	done(true, nil)
}

func (l *link) Roots(peer string) []broker.BatchSub          { return nil }
func (l *link) ClusterCapable(peer string) bool              { return true }
func (l *link) SyncOnConnect() bool                          { return true }
func (l *link) Digest(peer string) (broker.LinkDigest, bool) { return broker.LinkDigest{}, false }
func (l *link) DeltaCapable(peer string) bool                { return true }

// deliver drains the frame queue to empty, routing every reply. FIFO
// order keeps runs reproducible. Control frames dispatch to the
// destination's membership node, broker frames to its broker, and
// frames addressed to a client port are terminal deliveries.
func (h *harness) deliver() {
	for len(h.queue) > 0 && h.err == nil {
		f := h.queue[0]
		h.queue = h.queue[1:]
		h.framesByKind[f.msg.Kind.String()]++
		i, ok := h.index[f.to]
		if !ok {
			// A client port: record the notification and stop routing.
			if f.msg.Kind == broker.MsgNotify {
				h.deliveries++
				h.deliveryHash ^= hash64(f.to + "|" + f.msg.SubID + "|" + f.msg.PubID)
			}
			continue
		}
		if f.msg.Kind.IsControl() {
			for _, out := range h.nodes[i].HandleControl(f.from, f.msg) {
				h.queue = append(h.queue, frame{f.to, out.To, out.Msg})
			}
			continue
		}
		switch f.msg.Kind {
		case broker.MsgSubscribe, broker.MsgSubscribeBatch, broker.MsgRouteAnnounce:
			h.subFrames++
		}
		outs, err := h.brokers[i].Handle(f.from, f.msg)
		if err != nil {
			h.err = fmt.Errorf("scale: %s handling %v from %s: %w", f.to, f.msg.Kind, f.from, err)
			return
		}
		for _, out := range outs {
			h.queue = append(h.queue, frame{f.to, out.To, out.Msg})
		}
	}
	h.queue = nil // release the grown backing array between rounds
}

// inject runs one client-originated message through broker i and
// drains everything it causes.
func (h *harness) inject(i int, msg broker.Message) {
	outs, err := h.brokers[i].Handle("c-"+h.ids[i], msg)
	if err != nil {
		h.err = fmt.Errorf("scale: %s injecting %v: %w", h.ids[i], msg.Kind, err)
		return
	}
	for _, out := range outs {
		h.queue = append(h.queue, frame{h.ids[i], out.To, out.Msg})
	}
	h.deliver()
}

// hash64 is FNV-1a with an avalanche tail, for order-independent
// XOR-folding of delivery records.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// converged reports whether every node sees all n members alive.
func (h *harness) converged() bool {
	for _, n := range h.nodes {
		alive, total := n.AliveCount()
		if alive != len(h.nodes) || total != len(h.nodes) {
			return false
		}
	}
	return true
}

// totals sums the traffic counters across all nodes.
func (h *harness) totals() (bytes, fullGossip, deltaFrames uint64) {
	for _, n := range h.nodes {
		m := n.Metrics()
		bytes += m.ControlBytesSent
		fullGossip += m.GossipSent
		deltaFrames += m.DeltaFramesSent
	}
	return
}

// Run executes one scale experiment.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 3 {
		return Report{}, fmt.Errorf("scale: need at least 3 members, got %d", cfg.N)
	}
	const pingEvery = time.Second
	h := &harness{
		ids:          make([]string, cfg.N),
		nodes:        make([]*cluster.Node, cfg.N),
		index:        make(map[string]int, cfg.N),
		now:          time.Unix(0, 0),
		framesByKind: make(map[string]uint64),
	}
	clock := func() time.Time { return h.now }
	ncfg := cluster.Config{
		PingEvery:     pingEvery,
		GossipEvery:   pingEvery,
		SuspectMisses: 3,
		DeadAfter:     10 * pingEvery,
		ReconnectMin:  pingEvery,
		ReconnectMax:  4 * pingEvery,
		Seed:          cfg.Seed,
		Clock:         clock,
		LegacyGossip:  cfg.LegacyGossip,
	}
	h.brokers = make([]*broker.Broker, cfg.N)
	for i := range h.nodes {
		id := fmt.Sprintf("b%04d", i)
		h.ids[i] = id
		h.index[id] = i
		h.nodes[i] = cluster.NewNode(cluster.Member{ID: id, Addr: id}, &link{h: h, id: id}, ncfg)
		b, err := broker.New(id, store.PolicyPairwise)
		if err != nil {
			return Report{}, err
		}
		h.brokers[i] = b
		b.AttachClient("c-" + id)
		if cfg.Routed {
			cluster.AttachRouter(h.nodes[i], b, cluster.RouterConfig{})
		}
	}

	// Overlay: ring + chords. Each link is registered on both ends, so
	// both sides probe and both sides gossip across it — and the
	// brokers carry the same graph as their content overlay.
	degree := make([]int, cfg.N)
	connect := func(i, j int) bool {
		if i == j {
			return false
		}
		h.nodes[i].AddMember(cluster.Member{ID: h.ids[j], Addr: h.ids[j]}, true)
		h.nodes[j].AddMember(cluster.Member{ID: h.ids[i], Addr: h.ids[i]}, true)
		if err := h.brokers[i].ConnectNeighbor(h.ids[j]); err != nil {
			return false
		}
		if err := h.brokers[j].ConnectNeighbor(h.ids[i]); err != nil {
			return false
		}
		degree[i]++
		degree[j]++
		return true
	}
	links := 0
	for i := 0; i < cfg.N; i++ {
		if connect(i, (i+1)%cfg.N) {
			links++
		}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed|1))
	for i := 0; i < cfg.N; i++ {
		for c := 0; c < cfg.Chords; c++ {
			if connect(i, rng.IntN(cfg.N)) {
				links++
			}
		}
	}

	round := func() {
		h.now = h.now.Add(pingEvery)
		for _, n := range h.nodes {
			n.Tick()
		}
		h.deliver()
	}

	rep := Report{N: cfg.N, Links: links}
	for _, d := range degree {
		rep.MaxDegree = max(rep.MaxDegree, d)
	}

	// Phase 1: converge.
	for rep.ConvergedRound = 1; ; rep.ConvergedRound++ {
		if rep.ConvergedRound > cfg.MaxRounds {
			return rep, fmt.Errorf("scale: n=%d not converged after %d rounds", cfg.N, cfg.MaxRounds)
		}
		round()
		if h.converged() {
			break
		}
	}
	rep.ConvergedTime = time.Duration(rep.ConvergedRound) * pingEvery

	// Phase 2: steady-state measurement window.
	bytes0, full0, delta0 := h.totals()
	for r := 0; r < cfg.SteadyRounds; r++ {
		round()
	}
	bytes1, full1, delta1 := h.totals()
	rep.SteadyBytesPerMemberRound = float64(bytes1-bytes0) / float64(cfg.N*cfg.SteadyRounds)
	rep.SteadyFullGossipFrames = full1 - full0
	rep.SteadyDeltaFrames = delta1 - delta0
	rep.TotalControlBytes = bytes1

	// Phase 3: content layer. Inject client subscriptions over the
	// converged overlay (every draw comes from the same seeded stream,
	// so a routed and a flood run issue identical operations), count
	// the announcement frames they cost, then probe with publications
	// and fold the delivery set.
	if cfg.Subs > 0 {
		type subRec struct{ lo, hi int64 }
		subs := make([]subRec, cfg.Subs)
		frames0 := h.subFrames
		for k := range subs {
			origin := rng.IntN(cfg.N)
			lo := int64(rng.IntN(4000))
			width := int64(16 + rng.IntN(112))
			subs[k] = subRec{lo, lo + width}
			s := subscription.New(interval.New(lo, lo+width), interval.New(lo, lo+width))
			h.inject(origin, broker.Message{Kind: broker.MsgSubscribe, SubID: fmt.Sprintf("s%05d", k), Sub: s})
			if h.err != nil {
				return rep, h.err
			}
		}
		rep.SubFrames = h.subFrames - frames0
		rep.SubFramesPerLink = float64(rep.SubFrames) / float64(2*links)
		for _, b := range h.brokers {
			t, e := b.RouteTableStats()
			rep.RouteTables += t
			rep.RouteEntries += e
		}
		for k := 0; k < cfg.Pubs; k++ {
			sr := subs[k%len(subs)]
			mid := (sr.lo + sr.hi) / 2
			origin := rng.IntN(cfg.N)
			h.inject(origin, broker.Message{Kind: broker.MsgPublish, PubID: fmt.Sprintf("p%05d", k),
				Pub: subscription.NewPublication(mid, mid)})
			if h.err != nil {
				return rep, h.err
			}
		}
		rep.Deliveries = h.deliveries
		rep.DeliveryHash = h.deliveryHash
	}
	rep.FramesByKind = h.framesByKind
	return rep, nil
}
