//go:build !race

package scale

// The 1,000-broker run is excluded under -race: the harness is
// single-threaded (the detector finds nothing) and the instrumented
// build multiplies its wall clock past what CI affords.

import "testing"

// TestScale1000 is the tentpole acceptance run: one thousand
// simulated brokers on a ring+chords overlay, deterministic,
// converging in a bounded number of rounds, with steady-state gossip
// delta-only and per-member traffic bounded independent of cluster
// size.
func TestScale1000(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-broker run skipped in -short mode")
	}
	rep, err := Run(Config{N: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("n=1000: %+v", rep)
	if rep.ConvergedRound > 30 {
		t.Fatalf("n=1000 took %d rounds to converge, want ≤ 30", rep.ConvergedRound)
	}
	if rep.SteadyFullGossipFrames != 0 {
		t.Fatalf("steady state sent %d full-snapshot frames, want 0", rep.SteadyFullGossipFrames)
	}
	if rep.SteadyBytesPerMemberRound > 4096 {
		t.Fatalf("steady-state traffic %.0f bytes/member/round at n=1000, want bounded ≤ 4096", rep.SteadyBytesPerMemberRound)
	}
	// The route table each node maintains links for stays sparse even
	// though its member map holds all 1000 entries.
	if rep.MaxDegree > 32 {
		t.Fatalf("overlay degree %d, want sparse (≤ 32)", rep.MaxDegree)
	}
}
