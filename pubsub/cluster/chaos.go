package cluster

// Deterministic chaos harness: a broker chain with durable journals
// under a seeded schedule of crash-restarts, partitions, message
// drops, duplication, and delays — all on the simulator, so a seed
// fully determines the run. The harness is the reproducible half of
// the robustness story: the same seed run with faults disabled is the
// oracle, and after the faulted run heals (reconnect loop + digest
// reconciliation) its probe deliveries must match the oracle's
// exactly. The TCP kill -9 test covers the same recovery path against
// real processes; this harness covers the schedule space.

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"probsum/internal/broker"
	"probsum/internal/interval"
	"probsum/internal/obs"
	"probsum/internal/persist"
	"probsum/internal/simnet"
	"probsum/internal/store"
	"probsum/internal/subscription"
	"probsum/pubsub"
)

// ChaosConfig tunes one chaos run. Zero values select the defaults
// noted on each field.
type ChaosConfig struct {
	// Brokers is the chain length (4). Each broker hosts one client.
	Brokers int
	// Rounds is the number of fault rounds (8). Every round issues a
	// few client operations and may crash a broker or cut a link.
	Rounds int
	// Seed determines the entire schedule (1).
	Seed uint64
	// Faults enables injection; with false the same seed produces the
	// oracle run: identical operations, no faults.
	Faults bool
	// SyncEvery is the journal fsync batch (1 — every record durable,
	// so a crash loses nothing that was applied; larger values lose
	// an unsynced tail that digest reconciliation must repair).
	SyncEvery int
	// DropRate / DupRate / DelayRate are the per-message injection
	// probabilities on broker links during the fault phase
	// (0.03 / 0.03 / 0.05). All are forced to zero for the heal and
	// probe phases.
	DropRate, DupRate, DelayRate float64
	// MaxHealRounds bounds the gossip rounds the heal phase may take
	// to converge every link digest (24).
	MaxHealRounds int
	// Routed attaches a rendezvous router to every broker, so client
	// subscriptions route toward their cell owners instead of flooding
	// the chain. The flood oracle of the same seed stays the delivery
	// comparison surface.
	Routed bool
	// KillRendezvous overrides the scripted fault of the middle round
	// to crash the broker owning the schedule's rendezvous cell — the
	// worst-case routing fault. The override applies in the oracle run
	// too (crashIdx shapes the operation schedule) and draws nothing
	// from the RNG, so both runs stay op-for-op aligned.
	KillRendezvous bool
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Brokers <= 1 {
		c.Brokers = 4
	}
	if c.Rounds <= 0 {
		c.Rounds = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 1
	}
	if c.DropRate == 0 {
		c.DropRate = 0.03
	}
	if c.DupRate == 0 {
		c.DupRate = 0.03
	}
	if c.DelayRate == 0 {
		c.DelayRate = 0.05
	}
	if c.MaxHealRounds <= 0 {
		c.MaxHealRounds = 24
	}
	return c
}

// ChaosReport summarizes one run.
type ChaosReport struct {
	// Crashes / Partitions count injected faults; Subscribes /
	// Unsubscribes the client operations issued.
	Crashes      int
	Partitions   int
	Subscribes   int
	Unsubscribes int
	// Recovered sums the journal records replayed across restarts.
	Recovered int
	// HealRounds is how many gossip rounds the heal phase took until
	// every link digest converged; Converged is false when the bound
	// ran out first.
	HealRounds int
	Converged  bool
	// SyncRequests / RootsResent / StalePruned aggregate the digest
	// protocol's repair work across all brokers.
	SyncRequests int
	RootsResent  int
	StalePruned  int
	// RoutedSubs / RoutedPubs aggregate how much of the run's traffic
	// actually took the rendezvous path (zero in flood mode) — the
	// non-vacuousness check for routed runs.
	RoutedSubs int
	RoutedPubs int
	// Probes is the number of probe publications; Deliveries the
	// per-client sets of "subID/pubID" probe notifications — the
	// oracle comparison surface.
	Probes     int
	Deliveries map[string]map[string]bool
	// FlightDump is the run's flight-recorder tail (crashes, restarts,
	// partitions, suspicions, deaths, recoveries, re-announces),
	// oldest-first — attached to failure reports so a divergent run
	// explains itself.
	FlightDump []string
}

// chaosRun carries one run's live state.
type chaosRun struct {
	cfg     ChaosConfig
	rng     *rand.Rand
	net     *simnet.Network
	clock   *simnet.Clock
	ids     []string
	edges   [][2]string
	nodes   map[string]*Node
	stores  map[string]*persist.MemStore
	routers map[string]*Router
	flight  *obs.FlightRecorder
	report  ChaosReport
}

// chaosRendezvousProbe is the attribute-0 value whose cell owner the
// KillRendezvous schedule crashes — the midpoint of the range client
// subscriptions draw from, so live routes cross it.
const chaosRendezvousProbe = 450

// RunChaos executes one seeded chaos (or oracle) run and returns its
// report. Errors are structural (a broker refused an operation), not
// behavioral — behavioral divergence is what the report's Deliveries
// and Converged fields are for.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	r := &chaosRun{
		cfg:     cfg,
		rng:     rand.New(rand.NewPCG(cfg.Seed, cfg.Seed|1)),
		clock:   simnet.NewClock(),
		nodes:   make(map[string]*Node),
		stores:  make(map[string]*persist.MemStore),
		routers: make(map[string]*Router),
	}
	r.flight = obs.NewFlightRecorder(512, r.clock.Now)
	var opts []simnet.Option
	if cfg.Faults {
		opts = append(opts,
			simnet.WithFailures(cfg.DropRate, cfg.DupRate, cfg.Seed^0xc4a0),
			simnet.WithDelays(cfg.DelayRate, cfg.Seed^0xd31a))
	}
	r.net = simnet.New(opts...)

	for i := 0; i < cfg.Brokers; i++ {
		id := fmt.Sprintf("B%d", i+1)
		r.ids = append(r.ids, id)
		if err := r.net.AddBroker(id, store.PolicyPairwise); err != nil {
			return nil, err
		}
		st := persist.NewMemStore()
		r.stores[id] = st
		b := r.net.Broker(id)
		b.SetJournal(pubsub.NewBrokerJournal(b, st, cfg.SyncEvery))
	}
	for i := 0; i+1 < cfg.Brokers; i++ {
		a, b := r.ids[i], r.ids[i+1]
		if err := r.net.Connect(a, b); err != nil {
			return nil, err
		}
		r.edges = append(r.edges, [2]string{a, b})
	}
	ncfg := Config{
		PingEvery:     500 * time.Millisecond,
		SuspectMisses: 2,
		DeadAfter:     2 * time.Second,
		GossipEvery:   time.Second,
		ReconnectMin:  500 * time.Millisecond,
		ReconnectMax:  2 * time.Second,
		Seed:          cfg.Seed ^ 0x0de,
		Events:        r.flight,
	}
	for _, id := range r.ids {
		n, err := NewSimNode(r.net, id, r.clock, ncfg)
		if err != nil {
			return nil, err
		}
		r.nodes[id] = n
	}
	for _, e := range r.edges {
		r.nodes[e[0]].AddMember(Member{ID: e[1], Addr: e[1]}, true)
		r.nodes[e[1]].AddMember(Member{ID: e[0], Addr: e[0]}, true)
	}
	if cfg.Routed {
		for _, id := range r.ids {
			r.routers[id] = AttachRouter(r.nodes[id], r.net.Broker(id), RouterConfig{})
		}
	}
	for _, id := range r.ids {
		if err := r.net.AttachClient("c-"+id, id); err != nil {
			return nil, err
		}
	}

	// Assemble the membership layer before any fault.
	if err := r.step(250*time.Millisecond, 8); err != nil {
		return nil, err
	}

	// live tracks the schedule's subscriptions: subID → owner client
	// index and box. Both the faulted and the oracle run derive the
	// same schedule from it.
	type liveSub struct {
		client int
		lo, hi int64
	}
	live := make(map[string]liveSub)
	liveIDs := []string{} // deterministic iteration order
	subSeq := 0

	for round := 0; round < cfg.Rounds; round++ {
		// Scripted fault for this round (decided by the seed whether
		// or not faults are enabled, so the operation schedule below
		// is identical in both runs).
		crashIdx, cutEdge := -1, -1
		switch r.rng.IntN(3) {
		case 0:
			crashIdx = r.rng.IntN(cfg.Brokers)
		case 1:
			cutEdge = r.rng.IntN(len(r.edges))
		}
		if cfg.KillRendezvous && round == cfg.Rounds/2 {
			// Crash the rendezvous owner of the schedule's home cell
			// this round, whatever the script drew.
			owner := RendezvousOwner(chaosRendezvousProbe, RouterConfig{}, r.ids)
			for i, id := range r.ids {
				if id == owner {
					crashIdx, cutEdge = i, -1
				}
			}
		}
		if crashIdx >= 0 {
			r.report.Crashes++
			if cfg.Faults {
				r.flight.Recordf("crash", "harness", "round %d: %s", round, r.ids[crashIdx])
				if err := r.crash(r.ids[crashIdx]); err != nil {
					return nil, err
				}
			}
		}
		if cutEdge >= 0 {
			r.report.Partitions++
			if cfg.Faults {
				r.flight.Recordf("partition", "harness", "round %d: %s-%s cut", round, r.edges[cutEdge][0], r.edges[cutEdge][1])
				r.net.SetLink(r.edges[cutEdge][0], r.edges[cutEdge][1], false)
			}
		}
		if err := r.step(250*time.Millisecond, 4); err != nil {
			return nil, err
		}

		// Client operations from brokers the script has alive.
		for op := 0; op < 2; op++ {
			ci := r.rng.IntN(cfg.Brokers)
			unsub := r.rng.IntN(3) == 0 && len(liveIDs) > 0
			var victim int
			if unsub {
				victim = r.rng.IntN(len(liveIDs))
			}
			lo := int64(r.rng.IntN(900))
			width := int64(20 + r.rng.IntN(180))
			if ci == crashIdx {
				continue // its broker is down this round, in both runs
			}
			client := "c-" + r.ids[ci]
			if unsub {
				subID := liveIDs[victim]
				if live[subID].client != ci {
					continue // only the owner can unsubscribe
				}
				delete(live, subID)
				liveIDs = append(liveIDs[:victim], liveIDs[victim+1:]...)
				r.report.Unsubscribes++
				if err := r.net.ClientUnsubscribe(client, subID); err != nil {
					return nil, err
				}
			} else {
				subSeq++
				subID := fmt.Sprintf("s%d", subSeq)
				live[subID] = liveSub{client: ci, lo: lo, hi: lo + width}
				liveIDs = append(liveIDs, subID)
				r.report.Subscribes++
				s := subscription.New(interval.New(lo, lo+width), interval.New(lo, lo+width))
				if err := r.net.ClientSubscribe(client, subID, s); err != nil {
					return nil, err
				}
			}
			if _, err := r.net.Run(); err != nil {
				return nil, err
			}
		}
		if err := r.step(250*time.Millisecond, 4); err != nil {
			return nil, err
		}

		// Heal this round's faults.
		if cutEdge >= 0 && cfg.Faults {
			r.flight.Recordf("heal", "harness", "round %d: %s-%s restored", round, r.edges[cutEdge][0], r.edges[cutEdge][1])
			r.net.SetLink(r.edges[cutEdge][0], r.edges[cutEdge][1], true)
		}
		if crashIdx >= 0 && cfg.Faults {
			r.flight.Recordf("restart", "harness", "round %d: %s", round, r.ids[crashIdx])
			if err := r.restart(r.ids[crashIdx]); err != nil {
				return nil, err
			}
		}
		if err := r.step(250*time.Millisecond, 4); err != nil {
			return nil, err
		}
	}

	// Heal phase: injection off, everything alive; gossip rounds run
	// until every link digest converges (bounded).
	r.net.SetFailureRates(0, 0, 0)
	if err := r.step(250*time.Millisecond, 12); err != nil {
		return nil, err
	}
	for r.report.HealRounds = 0; r.report.HealRounds < cfg.MaxHealRounds; r.report.HealRounds++ {
		if r.converged() {
			r.report.Converged = true
			break
		}
		if err := r.step(ncfg.GossipEvery, 1); err != nil {
			return nil, err
		}
	}
	if !r.report.Converged && r.converged() {
		r.report.Converged = true
	}

	// Probe phase: one publication through the midpoint of every live
	// subscription, published from a rotating client. Deliveries of
	// exactly these IDs are the oracle comparison surface.
	r.net.ClearDeliveries()
	sort.Strings(liveIDs)
	for i, subID := range liveIDs {
		ls := live[subID]
		mid := (ls.lo + ls.hi) / 2
		from := "c-" + r.ids[i%cfg.Brokers]
		pubID := fmt.Sprintf("probe-%d", i)
		r.report.Probes++
		if err := r.net.ClientPublish(from, pubID, subscription.NewPublication(mid, mid)); err != nil {
			return nil, err
		}
		if _, err := r.net.Run(); err != nil {
			return nil, err
		}
	}
	r.report.Deliveries = make(map[string]map[string]bool)
	for _, id := range r.ids {
		set := make(map[string]bool)
		for _, m := range r.net.Delivered("c-" + id) {
			if m.Kind == broker.MsgNotify {
				set[m.SubID+"/"+m.PubID] = true
			}
		}
		r.report.Deliveries["c-"+id] = set
	}
	r.report.FlightDump = r.flight.Dump()
	for _, id := range r.ids {
		m := r.net.Broker(id).Metrics()
		r.report.SyncRequests += m.SyncRequests
		r.report.RootsResent += m.SyncRootsResent
		r.report.StalePruned += m.SyncStalePruned
		r.report.RoutedSubs += m.RoutedSubs
		r.report.RoutedPubs += m.RoutedPubs
	}
	return &r.report, nil
}

// step advances the clock, ticks every live node, and runs the
// network to quiescence, `ticks` times.
func (r *chaosRun) step(d time.Duration, ticks int) error {
	for i := 0; i < ticks; i++ {
		r.clock.Advance(d)
		for _, id := range r.ids {
			if r.net.Crashed(id) {
				continue // dead processes do not tick
			}
			r.nodes[id].Tick()
		}
		if _, err := r.net.Run(); err != nil {
			return err
		}
	}
	return nil
}

// crash kills a broker: the unsynced journal tail is lost with the
// process, and the simulator drops everything sent to it until
// restart.
func (r *chaosRun) crash(id string) error {
	r.stores[id].Crash()
	return r.net.CrashBroker(id)
}

// restart recovers a fresh broker from the crashed one's store and
// reinstalls it — the simulated form of restarting brokerd over the
// same -data-dir.
func (r *chaosRun) restart(id string) error {
	b, err := broker.New(id, store.PolicyPairwise)
	if err != nil {
		return err
	}
	rec, err := pubsub.RecoverBroker(b, r.stores[id])
	if err != nil {
		return err
	}
	r.report.Recovered += rec.SnapshotOps + rec.JournalRecords
	b.SetJournal(pubsub.NewBrokerJournal(b, r.stores[id], r.cfg.SyncEvery))
	if err := r.net.RestartBroker(id, b); err != nil {
		return err
	}
	// The recovered broker keeps its membership node; only the control
	// handler (and the router, when routing is on) must be re-pointed
	// at the new broker object.
	b.SetControlHandler(r.nodes[id].HandleControl)
	if rt := r.routers[id]; rt != nil {
		rt.Rebind(b)
	}
	return nil
}

// converged reports whether every link's sender digest matches the
// receiver's received digest, in both directions.
func (r *chaosRun) converged() bool {
	for _, e := range r.edges {
		for _, dir := range [][2]string{{e[0], e[1]}, {e[1], e[0]}} {
			sender, receiver := r.net.Broker(dir[0]), r.net.Broker(dir[1])
			if sender == nil || receiver == nil {
				return false
			}
			sent, ok := sender.LinkDigest(dir[1])
			if !ok {
				return false
			}
			if sent != receiver.ReceivedDigest(dir[0]) {
				return false
			}
		}
	}
	return true
}
