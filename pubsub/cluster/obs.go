package cluster

// Observability: a membership node exports its view and activity
// counters through the same pull-model registry the transport uses —
// callbacks snapshot NodeMetrics at scrape time, so the hot paths pay
// nothing for an attached registry.

import "probsum/internal/obs"

// RegisterObservability registers the node's member-view gauges and
// membership-protocol counters on reg (brokerd wires this when both a
// cluster layer and -metrics-addr are active). Callbacks read live
// state at scrape time via Node.Metrics and Node.AliveCount.
func (n *Node) RegisterObservability(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterGauge("cluster_members_alive", func() int64 {
		alive, _ := n.AliveCount()
		return int64(alive)
	})
	reg.RegisterGauge("cluster_members_total", func() int64 {
		_, total := n.AliveCount()
		return int64(total)
	})
	counters := map[string]func(NodeMetrics) uint64{
		"cluster_pings_sent":         func(m NodeMetrics) uint64 { return m.PingsSent },
		"cluster_pongs_received":     func(m NodeMetrics) uint64 { return m.PongsReceived },
		"cluster_suspects":           func(m NodeMetrics) uint64 { return m.Suspects },
		"cluster_deaths":             func(m NodeMetrics) uint64 { return m.Deaths },
		"cluster_recoveries":         func(m NodeMetrics) uint64 { return m.Recoveries },
		"cluster_reannounce_batches": func(m NodeMetrics) uint64 { return m.ReannounceBatches },
		"cluster_reannounced_subs":   func(m NodeMetrics) uint64 { return m.ReannouncedSubs },
		"cluster_gossip_sent":        func(m NodeMetrics) uint64 { return m.GossipSent },
		"cluster_delta_frames_sent":  func(m NodeMetrics) uint64 { return m.DeltaFramesSent },
		"cluster_dials":              func(m NodeMetrics) uint64 { return m.Dials },
		"cluster_dial_failures":      func(m NodeMetrics) uint64 { return m.DialFailures },
		"cluster_control_bytes_sent": func(m NodeMetrics) uint64 { return m.ControlBytesSent },
	}
	for name, pick := range counters {
		pick := pick
		reg.RegisterCounter(name, func() int64 { return int64(pick(n.Metrics())) })
	}
}
