package cluster

// SWIM mechanics (ISSUE 8): indirect probes keeping members alive
// across one broken path, delta dissemination converging to the
// full-snapshot oracle's member map under seeded churn, and the
// inbound-EOF dial race staying incarnation-idempotent. Everything
// runs on the simulator clock — deterministic, socket-free, -race
// friendly.

import (
	"testing"
	"time"

	"probsum/internal/broker"
	"probsum/internal/simnet"
	"probsum/internal/store"
)

// swimTriangle builds three simulated brokers linked pairwise, each
// membership node tracking both peers.
func swimTriangle(t *testing.T, mutate func(*Config)) (*simnet.Network, *simnet.Clock, map[string]*Node, []string) {
	t.Helper()
	net := simnet.New()
	clock := simnet.NewClock()
	ids := []string{"B1", "B2", "B3"}
	for _, id := range ids {
		if err := net.AddBroker(id, store.PolicyPairwise); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			if err := net.Connect(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	cfg := Config{
		PingEvery:     500 * time.Millisecond,
		SuspectMisses: 2,
		DeadAfter:     2 * time.Second,
		GossipEvery:   time.Second,
		ReconnectMin:  500 * time.Millisecond,
		ReconnectMax:  2 * time.Second,
		Seed:          7,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	nodes := make(map[string]*Node)
	for _, id := range ids {
		n, err := NewSimNode(net, id, clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = n
	}
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			nodes[a].AddMember(Member{ID: b, Addr: b}, true)
			nodes[b].AddMember(Member{ID: a, Addr: a}, true)
		}
	}
	return net, clock, nodes, ids
}

func stepNodes(t *testing.T, net *simnet.Network, clock *simnet.Clock, nodes map[string]*Node, ids []string, d time.Duration, ticks int) {
	t.Helper()
	for i := 0; i < ticks; i++ {
		clock.Advance(d)
		for _, id := range ids {
			nodes[id].Tick()
		}
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIndirectProbeKeepsMemberAlive pins SWIM's core robustness win:
// when only the B1–B2 path breaks, B1's direct pings go unanswered but
// the PING-REQ relay through B3 vouches for B2, so B2 never turns
// suspect at B1 — no suspicion gossip, no refutation rounds, no
// incarnation inflation. The control run with indirect probing
// disabled shows the pathology the relays prevent: B1 suspects B2,
// the rumor leaks to B3 (whose own probe windows defeat the
// direct-evidence guard transiently), B2 refutes at a bumped
// incarnation, and the cycle spins for as long as the path stays
// broken.
func TestIndirectProbeKeepsMemberAlive(t *testing.T) {
	net, clock, nodes, ids := swimTriangle(t, nil)
	stepNodes(t, net, clock, nodes, ids, 250*time.Millisecond, 8)
	for _, pair := range [][2]string{{"B1", "B2"}, {"B2", "B1"}, {"B1", "B3"}, {"B3", "B2"}} {
		if m, _ := nodes[pair[0]].Member(pair[1]); m.State != StateAlive {
			t.Fatalf("after assembly %s sees %s as %v", pair[0], pair[1], m.State)
		}
	}

	// Cut only the direct B1–B2 path; both ends keep a live path
	// through B3. Far longer than DeadAfter.
	net.SetLink("B1", "B2", false)
	stepNodes(t, net, clock, nodes, ids, 250*time.Millisecond, 40)

	if m, _ := nodes["B1"].Member("B2"); m.State != StateAlive || m.Incarnation != 1 {
		t.Fatalf("B1 sees B2 as %v@%d despite a live relay path, want alive@1", m.State, m.Incarnation)
	}
	if m, _ := nodes["B2"].Member("B1"); m.State != StateAlive {
		t.Fatalf("B2 sees B1 as %v despite a live relay path, want alive", m.State)
	}
	m1 := nodes["B1"].Metrics()
	if m1.Suspects != 0 {
		t.Errorf("B1 suspected a member %d times despite the relay path", m1.Suspects)
	}
	if m1.PingReqsSent == 0 {
		t.Error("B1 never sent a PING-REQ over the broken path")
	}
	if m1.IndirectAcks == 0 {
		t.Error("B1 never received an indirect ack for B2")
	}
	if m3 := nodes["B3"].Metrics(); m3.PingReqsRelayed == 0 {
		t.Error("B3 never relayed an indirect probe")
	}

	// Control: the identical scenario without indirect probing spins
	// the suspect/refute cycle — suspicion transitions and inflated
	// incarnations — which is exactly what the relays prevented above.
	netC, clockC, nodesC, idsC := swimTriangle(t, func(c *Config) { c.IndirectRelays = -1 })
	stepNodes(t, netC, clockC, nodesC, idsC, 250*time.Millisecond, 8)
	netC.SetLink("B1", "B2", false)
	stepNodes(t, netC, clockC, nodesC, idsC, 250*time.Millisecond, 40)
	mc := nodesC["B1"].Metrics()
	m, _ := nodesC["B1"].Member("B2")
	if mc.Suspects == 0 || m.Incarnation <= 1 {
		t.Fatalf("control run without relays stayed stable (suspects=%d, B2@%d); the scenario is vacuous",
			mc.Suspects, m.Incarnation)
	}
}

// swimChurn drives a deterministic churn script over a 4-broker full
// mesh — isolate B4, let the detector and gossip walk it to dead,
// heal, reconverge — and returns each node's final member-state map
// plus the nodes themselves.
func swimChurn(t *testing.T, legacy bool) (map[string]map[string]State, map[string]*Node, func(int)) {
	t.Helper()
	net := simnet.New()
	clock := simnet.NewClock()
	ids := []string{"B1", "B2", "B3", "B4"}
	for _, id := range ids {
		if err := net.AddBroker(id, store.PolicyPairwise); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			if err := net.Connect(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	cfg := Config{
		PingEvery:     500 * time.Millisecond,
		SuspectMisses: 2,
		DeadAfter:     2 * time.Second,
		GossipEvery:   time.Second,
		ReconnectMin:  500 * time.Millisecond,
		ReconnectMax:  2 * time.Second,
		Seed:          42,
		LegacyGossip:  legacy,
	}
	nodes := make(map[string]*Node)
	for _, id := range ids {
		n, err := NewSimNode(net, id, clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = n
	}
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			nodes[a].AddMember(Member{ID: b, Addr: b}, true)
			nodes[b].AddMember(Member{ID: a, Addr: a}, true)
		}
	}
	step := func(ticks int) {
		stepNodes(t, net, clock, nodes, ids, 250*time.Millisecond, ticks)
	}

	step(8) // assemble
	// Churn: B4 loses every link (crash-like), stays gone past
	// DeadAfter, then returns.
	for _, other := range []string{"B1", "B2", "B3"} {
		net.SetLink("B4", other, false)
	}
	step(40)
	for _, other := range []string{"B1", "B2", "B3"} {
		if m, _ := nodes[other].Member("B4"); m.State != StateDead {
			t.Fatalf("%s run: %s sees isolated B4 as %v, want dead", gossipMode(legacy), other, m.State)
		}
	}
	for _, other := range []string{"B1", "B2", "B3"} {
		net.SetLink("B4", other, true)
	}
	step(40)

	final := make(map[string]map[string]State)
	for _, id := range ids {
		states := make(map[string]State)
		for _, m := range nodes[id].Members() {
			states[m.ID] = m.State
		}
		final[id] = states
	}
	return final, nodes, step
}

func gossipMode(legacy bool) string {
	if legacy {
		return "legacy"
	}
	return "delta"
}

// TestDeltaDisseminationMatchesOracle pins that delta-only
// dissemination converges to the exact member map the full-snapshot
// oracle produces under the same seeded churn — and that the delta
// run really is delta-only in steady state (zero full-snapshot gossip
// frames once converged, while delta frames keep flowing).
func TestDeltaDisseminationMatchesOracle(t *testing.T) {
	oracle, _, _ := swimChurn(t, true)
	delta, nodes, step := swimChurn(t, false)

	for id, want := range oracle {
		got := delta[id]
		if len(got) != len(want) {
			t.Fatalf("node %s member maps diverge: delta %v vs oracle %v", id, got, want)
		}
		for member, state := range want {
			if got[member] != state {
				t.Errorf("node %s sees %s as %v, oracle says %v", id, member, got[member], state)
			}
		}
		if want["B4"] != StateAlive && id != "B4" {
			t.Fatalf("oracle run left B4 %v at %s; the heal never converged", want["B4"], id)
		}
	}

	// Steady state: no full snapshots, deltas still flowing.
	before := make(map[string]NodeMetrics)
	for id, n := range nodes {
		before[id] = n.Metrics()
	}
	step(20)
	var deltaFrames uint64
	for id, n := range nodes {
		m := n.Metrics()
		if m.GossipSent != before[id].GossipSent {
			t.Errorf("node %s sent %d full-snapshot gossip frames in steady state",
				id, m.GossipSent-before[id].GossipSent)
		}
		deltaFrames += m.DeltaFramesSent - before[id].DeltaFramesSent
	}
	if deltaFrames == 0 {
		t.Error("no delta frames flowed in steady state")
	}
}

// deferredDialLink captures Connect callbacks so a test can interleave
// dial completion with other events deterministically.
type deferredDialLink struct {
	nullLink
	dials []func(established bool, err error)
}

func (l *deferredDialLink) Connect(peer, addr string, done func(established bool, err error)) {
	l.dials = append(l.dials, done)
}

// TestDialRaceDoesNotInflateIncarnation pins the inbound-EOF dial
// race (ISSUE 8 satellite): while our re-dial toward B is in flight, B
// dials back first — its inbound pong refutes the suspicion — and only
// then does the EOF of the old, losing connection fire PeerDown. That
// stale link-down must not re-suspect the member (it describes the
// connection we already abandoned), or every connection race would
// cost an incarnation bump and a round of refutation gossip.
func TestDialRaceDoesNotInflateIncarnation(t *testing.T) {
	l := &deferredDialLink{nullLink: nullLink{self: "A"}}
	now := time.Unix(0, 0)
	n := NewNode(Member{ID: "A"}, l, Config{Clock: func() time.Time { return now }})

	n.AddMember(Member{ID: "B", Addr: "b:1"}, true)
	n.PeerUp("B") // refutes suspect-until-contacted: alive@1
	if m, _ := n.Member("B"); m.State != StateAlive || m.Incarnation != 1 {
		t.Fatalf("after contact B = %+v, want alive@1", m)
	}

	// The link drops for real: suspect, no incarnation change (only
	// refutations bump it).
	n.PeerDown("B")
	if m, _ := n.Member("B"); m.State != StateSuspect || m.Incarnation != 1 {
		t.Fatalf("after link loss B = %+v, want suspect@1", m)
	}

	// The reconnect loop starts a dial; completion is in our hands.
	now = now.Add(time.Second)
	n.Tick()
	if len(l.dials) != 1 {
		t.Fatalf("reconnect loop started %d dials, want 1", len(l.dials))
	}

	// B's own dial-back lands first: inbound evidence refutes the
	// suspicion at a fresh incarnation.
	n.HandleControl("B", broker.Message{Kind: broker.MsgPong})
	if m, _ := n.Member("B"); m.State != StateAlive || m.Incarnation != 2 {
		t.Fatalf("after refuting pong B = %+v, want alive@2", m)
	}

	// The old connection's EOF arrives while our dial is still in
	// flight: it must NOT re-suspect (and so must not force another
	// refutation bump later).
	n.PeerDown("B")
	if m, _ := n.Member("B"); m.State != StateAlive || m.Incarnation != 2 {
		t.Fatalf("stale EOF during re-dial re-suspected B: %+v, want alive@2", m)
	}

	// Our dial completes; the member is simply up — no state change,
	// no further incarnation inflation.
	l.dials[0](true, nil)
	if m, _ := n.Member("B"); m.State != StateAlive || m.Incarnation != 2 {
		t.Fatalf("after dial completion B = %+v, want alive@2", m)
	}
	if s := n.Metrics().Suspects; s != 1 {
		t.Fatalf("suspect transitions = %d, want exactly the real link loss", s)
	}
}
