package cluster

// TCP attachment: binding a membership node to a real-socket broker.

import (
	"probsum/internal/broker"
	"probsum/pubsub"
)

// tcpLink adapts a pubsub TCP broker to the Link interface.
type tcpLink struct {
	b *pubsub.Broker
}

func (l tcpLink) Self() string { return l.b.ID() }

func (l tcpLink) Send(peer string, msg broker.Message) bool {
	return l.b.SendPeer(peer, msg)
}

func (l tcpLink) Connect(peer, addr string, done func(established bool, err error)) {
	// Dialing blocks (bounded by the transport's dial timeout); keep
	// the caller's tick loop responsive.
	go func() { done(l.b.DialPeer(peer, addr)) }()
}

func (l tcpLink) Roots(peer string) []broker.BatchSub {
	return l.b.PeerRoots(peer)
}

func (l tcpLink) ClusterCapable(peer string) bool {
	return l.b.PeerClusterVersion(peer) >= 1
}

// The TCP transport sends the coverage roots as one SUBBATCH after
// every successful peer dial, so the node itself stays quiet on
// recovery.
func (l tcpLink) SyncOnConnect() bool { return true }

// Digest offers the broker's sender-side link digest only toward
// peers whose advertised wire vocabulary includes the sync frames a
// mismatch would trigger — older peers keep receiving the exact
// digest-less gossip bytes they always did.
func (l tcpLink) Digest(peer string) (broker.LinkDigest, bool) {
	if l.b.PeerWireCodec(peer) < pubsub.CodecBinary3 {
		return broker.LinkDigest{}, false
	}
	return l.b.LinkDigest(peer)
}

// DeltaCapable gates the SWIM vocabulary on the peer's advertised
// wire codec: ping-req, gossip-delta, and ping/pong member tails
// exist only from wire v4 on.
func (l tcpLink) DeltaCapable(peer string) bool {
	return l.b.PeerWireCodec(peer) >= pubsub.CodecBinary4
}

// Attach binds a membership node to a listening TCP broker: the
// node's control handler and peer-link hooks are registered (which
// also turns on the cluster advertisement in the broker's hellos and
// acks), and a background ticker starts driving the failure detector,
// gossip, and reconnect loop. Call AddMember (or use Start / Join)
// to tell the node which peers to maintain; initial connections are
// established by the reconnect loop itself, so peers may come up in
// any order. Stop the node with Close (the broker's lifetime is
// separate).
//
// Attach before connecting peers: links dialed after attachment
// advertise the cluster protocol, so both sides ping each other.
func Attach(b *pubsub.Broker, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := NewNode(Member{ID: b.ID(), Addr: b.Addr(), Incarnation: cfg.Incarnation}, tcpLink{b: b}, cfg)
	// Durable membership: adopt the member list a previous life
	// persisted (rejoin the overlay without a seed node) and register
	// the journal hooks that keep it persisted in this one.
	if rs, ok := b.Recovery(); ok && len(rs.Members) > 0 {
		n.adoptRecovered(rs.Members)
	}
	if j := b.Journal(); j != nil {
		j.SetMemberSource(n.WireMembers)
		n.mu.Lock()
		n.persistFn = j.RecordMembers
		n.mu.Unlock()
	}
	b.SetControlHandler(n.HandleControl)
	b.SetPeerHooks(n.PeerUp, n.PeerDown)
	n.wg.Add(1)
	go n.run()
	return n
}
