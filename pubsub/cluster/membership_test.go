package cluster

// Unit tests for the membership state machine: claim ordering, gossip
// merge rules, death refutation, mesh discovery, and the topology
// format.

import (
	"testing"
	"time"

	"probsum/internal/broker"
)

func TestSupersedes(t *testing.T) {
	cases := []struct {
		name string
		a, b Member
		want bool
	}{
		{"higher incarnation wins", Member{Incarnation: 2, State: StateAlive}, Member{Incarnation: 1, State: StateDead}, true},
		{"lower incarnation loses", Member{Incarnation: 1, State: StateDead}, Member{Incarnation: 2, State: StateAlive}, false},
		{"same incarnation, dead beats alive", Member{Incarnation: 1, State: StateDead}, Member{Incarnation: 1, State: StateAlive}, true},
		{"same incarnation, suspect beats alive", Member{Incarnation: 1, State: StateSuspect}, Member{Incarnation: 1, State: StateAlive}, true},
		{"same incarnation, alive does not beat suspect", Member{Incarnation: 1, State: StateAlive}, Member{Incarnation: 1, State: StateSuspect}, false},
		{"equal claims do not supersede", Member{Incarnation: 1, State: StateAlive}, Member{Incarnation: 1, State: StateAlive}, false},
	}
	for _, tc := range cases {
		if got := supersedes(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: supersedes(%+v, %+v) = %v", tc.name, tc.a, tc.b, got)
		}
	}
}

// nullLink is a Link for driving a Node without any transport.
type nullLink struct {
	self  string
	sent  []broker.Outbound
	roots []broker.BatchSub
}

func (l *nullLink) Self() string { return l.self }
func (l *nullLink) Send(peer string, msg broker.Message) bool {
	l.sent = append(l.sent, broker.Outbound{To: peer, Msg: msg})
	return true
}
func (l *nullLink) Connect(peer, addr string, done func(established bool, err error)) {
	done(true, nil)
}
func (l *nullLink) Roots(peer string) []broker.BatchSub { return l.roots }
func (l *nullLink) ClusterCapable(peer string) bool     { return true }
func (l *nullLink) SyncOnConnect() bool                 { return false }
func (l *nullLink) Digest(peer string) (broker.LinkDigest, bool) {
	return broker.LinkDigest{}, false
}
func (l *nullLink) DeltaCapable(peer string) bool { return true }

// sentKinds filters the captured sends down to one message kind.
func (l *nullLink) sentKinds(k broker.MsgKind) []broker.Outbound {
	var out []broker.Outbound
	for _, o := range l.sent {
		if o.Msg.Kind == k {
			out = append(out, o)
		}
	}
	return out
}

func testNode(self string, mesh bool) (*Node, *nullLink) {
	l := &nullLink{self: self}
	base := time.Unix(0, 0)
	n := NewNode(Member{ID: self}, l, Config{
		Clock: func() time.Time { return base },
		Mesh:  mesh,
	})
	return n, l
}

func TestGossipMergeAdoptsAndDiscovers(t *testing.T) {
	n, _ := testNode("A", false)
	n.AddMember(Member{ID: "B", Addr: "b:1"}, true)

	// A rumor at a higher incarnation supersedes the local record.
	n.HandleControl("B", broker.Message{Kind: broker.MsgGossip, Members: []broker.MemberInfo{
		{ID: "B", Incarnation: 1, State: broker.MemberAlive},
		{ID: "C", Addr: "c:1", Incarnation: 3, State: broker.MemberDead},
	}})
	c, ok := n.Member("C")
	if !ok || c.State != StateDead || c.Incarnation != 3 || c.Addr != "c:1" {
		t.Fatalf("discovered member C = %+v, %v", c, ok)
	}
	// Without mesh mode, discovered members are tracked but unlinked.
	n.mu.Lock()
	linked := n.members["C"].linked
	n.mu.Unlock()
	if linked {
		t.Fatal("non-mesh node linked a gossip-discovered member")
	}

	// A stale lower-incarnation claim must not regress the record.
	n.HandleControl("B", broker.Message{Kind: broker.MsgGossip, Members: []broker.MemberInfo{
		{ID: "C", Incarnation: 2, State: broker.MemberAlive},
	}})
	if c, _ := n.Member("C"); c.State != StateDead || c.Incarnation != 3 {
		t.Fatalf("stale claim regressed C to %+v", c)
	}
	// A fresher alive claim recovers it.
	n.HandleControl("B", broker.Message{Kind: broker.MsgGossip, Members: []broker.MemberInfo{
		{ID: "C", Incarnation: 4, State: broker.MemberAlive},
	}})
	if c, _ := n.Member("C"); c.State != StateAlive || c.Incarnation != 4 {
		t.Fatalf("fresh claim did not recover C: %+v", c)
	}
}

func TestGossipMeshLinksDiscoveredMembers(t *testing.T) {
	n, _ := testNode("A", true)
	n.HandleControl("B", broker.Message{Kind: broker.MsgGossip, Members: []broker.MemberInfo{
		{ID: "C", Addr: "c:1", Incarnation: 1, State: broker.MemberAlive},
	}})
	n.mu.Lock()
	st := n.members["C"]
	linked := st != nil && st.linked
	n.mu.Unlock()
	if !linked {
		t.Fatal("mesh node did not link the gossip-discovered member")
	}
}

func TestGossipSelfDeathIsRefuted(t *testing.T) {
	n, _ := testNode("A", false)
	outs := n.HandleControl("B", broker.Message{Kind: broker.MsgGossip, Members: []broker.MemberInfo{
		{ID: "A", Incarnation: 5, State: broker.MemberDead},
	}})
	self, _ := n.Member("A")
	if self.Incarnation != 6 || self.State != StateAlive {
		t.Fatalf("self after death rumor = %+v, want alive@6", self)
	}
	// The refutation gossips straight back to the rumor's sender.
	var refuted bool
	for _, o := range outs {
		if o.To == "B" && o.Msg.Kind == broker.MsgGossip {
			for _, m := range o.Msg.Members {
				if m.ID == "A" && m.Incarnation == 6 && m.State == broker.MemberAlive {
					refuted = true
				}
			}
		}
	}
	if !refuted {
		t.Fatalf("no refutation gossip in %+v", outs)
	}
}

func TestDirectEvidenceOutranksRumor(t *testing.T) {
	n, _ := testNode("A", false)
	n.AddMember(Member{ID: "B", Addr: "b:1"}, true)
	n.AddMember(Member{ID: "C", Addr: "c:1"}, true)
	// Direct contact: the link to C is up and C answers a ping — no
	// outstanding probes.
	n.PeerUp("C")
	n.HandleControl("C", broker.Message{Kind: broker.MsgPong})
	// B gossips that C is dead at the same incarnation.
	c, _ := n.Member("C")
	n.HandleControl("B", broker.Message{Kind: broker.MsgGossip, Members: []broker.MemberInfo{
		{ID: "C", Incarnation: c.Incarnation, State: broker.MemberDead},
	}})
	if got, _ := n.Member("C"); got.State != StateAlive {
		t.Fatalf("rumor overrode direct evidence: C = %+v", got)
	}
}

func TestPingIsAnsweredWithPong(t *testing.T) {
	n, _ := testNode("A", false)
	outs := n.HandleControl("B", broker.Message{Kind: broker.MsgPing, Seq: 42})
	if len(outs) != 1 || outs[0].To != "B" || outs[0].Msg.Kind != broker.MsgPong || outs[0].Msg.Seq != 42 {
		t.Fatalf("ping answered with %+v", outs)
	}
}

func TestRecoveryReannouncesRoots(t *testing.T) {
	n, l := testNode("A", false)
	n.AddMember(Member{ID: "B", Addr: "b:1"}, true)

	// First link-up with an empty coverage table: nothing to announce
	// (the membership snapshot push is separate and expected).
	n.PeerUp("B")
	if batches := l.sentKinds(broker.MsgSubscribeBatch); len(batches) != 0 {
		t.Fatalf("initial link-up announced %+v", batches)
	}
	l.roots = []broker.BatchSub{{SubID: "s1"}, {SubID: "s2"}}

	// A link loss marks B lossy; inbound pongs alone must NOT heal
	// (they prove B reaches us, not that we reach B)...
	n.PeerDown("B")
	if outs := n.HandleControl("B", broker.Message{Kind: broker.MsgPong}); len(outs) != 0 {
		t.Fatalf("inbound pong healed a lossy link: %+v", outs)
	}
	// ...but the restored OUTBOUND link must carry the roots as ONE
	// SUBBATCH.
	n.PeerUp("B")
	batches := l.sentKinds(broker.MsgSubscribeBatch)
	if len(batches) != 1 || batches[0].To != "B" ||
		len(batches[0].Msg.Subs) != 2 {
		t.Fatalf("recovery sent %+v, want one SUBBATCH of 2 to B", batches)
	}
	m := n.Metrics()
	if m.ReannounceBatches != 1 || m.ReannouncedSubs != 2 {
		t.Fatalf("reannounce metrics = %+v", m)
	}
	// A repeated link-up on the healthy link must NOT re-announce.
	n.PeerUp("B")
	if batches := l.sentKinds(broker.MsgSubscribeBatch); len(batches) != 1 {
		t.Fatalf("steady-state link-up re-announced: %+v", batches)
	}
}

// dropLink is a nullLink whose transport refuses control frames while
// dropControl is set — the shape of a TCP port whose peer has not yet
// advertised a cluster layer (its hello/ack is still in flight), where
// sendPeer drops every ping before it reaches the wire.
type dropLink struct {
	nullLink
	dropControl bool
	dropped     int
}

func (l *dropLink) Send(peer string, msg broker.Message) bool {
	if l.dropControl && msg.Kind.IsControl() {
		l.dropped++
		return false
	}
	return l.nullLink.Send(peer, msg)
}

// TestLostProbeNoSuspicionDuringHandshake pins the handshake-race fix:
// pings the transport refuses (peer's cluster version still unknown,
// so control frames are dropped at the port) must not count as
// outstanding probes — a peer whose ack is merely slow must never be
// suspected for not answering pings that were never sent. Once the ack
// arrives and the transport re-fires the peer-up hook, probing resumes
// and the round trip completes normally.
func TestLostProbeNoSuspicionDuringHandshake(t *testing.T) {
	l := &dropLink{nullLink: nullLink{self: "A"}}
	now := time.Unix(0, 0)
	n := NewNode(Member{ID: "A"}, l, Config{
		PingEvery:     time.Second,
		GossipEvery:   time.Minute, // keep gossip out of the trace
		SuspectMisses: 2,
		DeadAfter:     time.Hour,
		ReconnectMin:  time.Hour, // keep the reconnect loop quiet
		ReconnectMax:  2 * time.Hour,
		Clock:         func() time.Time { return now },
	})
	n.AddMember(Member{ID: "B", Addr: "b:1"}, true)
	// The outbound connection is up, but B's ack — the frame that
	// reveals its cluster version — has not arrived: the transport
	// drops every control frame toward it.
	l.dropControl = true
	n.PeerUp("B")

	// Tick far past the suspicion threshold. Every ping is refused by
	// the transport, so none is outstanding and B must stay alive.
	for i := 0; i < 8; i++ {
		now = now.Add(time.Second)
		n.Tick()
	}
	if l.dropped <= n.cfg.SuspectMisses {
		t.Fatalf("only %d control frames dropped; the scenario never crossed the miss threshold", l.dropped)
	}
	if m, _ := n.Member("B"); m.State != StateAlive {
		t.Fatalf("B became %v from pings that never left the process", m.State)
	}
	n.mu.Lock()
	awaiting := n.members["B"].awaiting
	n.mu.Unlock()
	if awaiting != 0 {
		t.Fatalf("%d probes counted outstanding, want 0 (all sends failed)", awaiting)
	}

	// The ack arrives: the transport starts passing control frames and
	// re-fires the peer-up hook (learnPeer's 0→nonzero re-kick).
	l.dropControl = false
	n.PeerUp("B")
	now = now.Add(time.Second)
	n.Tick()
	pings := l.sentKinds(broker.MsgPing)
	if len(pings) == 0 {
		t.Fatal("no ping sent after the ack arrived — probe path not re-armed")
	}
	n.HandleControl("B", broker.Message{Kind: broker.MsgPong, Seq: pings[len(pings)-1].Msg.Seq})
	if m, _ := n.Member("B"); m.State != StateAlive {
		t.Fatalf("B is %v after a completed probe round trip", m.State)
	}
}

func TestTopologyParseAndValidate(t *testing.T) {
	good := []byte(`{
		"policy": "pairwise",
		"nodes": [
			{"id": "B1", "listen": "127.0.0.1:7001"},
			{"id": "B2", "listen": "127.0.0.1:7002"},
			{"id": "B3", "listen": "127.0.0.1:7003"}
		],
		"links": [["B1","B2"],["B2","B3"]]
	}`)
	topo, err := ParseTopology(good)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.PeersOf("B2"); len(got) != 2 || got[0] != "B1" || got[1] != "B3" {
		t.Fatalf("PeersOf(B2) = %v", got)
	}
	if got := topo.PeersOf("B1"); len(got) != 1 || got[0] != "B2" {
		t.Fatalf("PeersOf(B1) = %v", got)
	}
	if _, ok := topo.NodeByID("B3"); !ok {
		t.Fatal("NodeByID(B3) missing")
	}

	bad := []string{
		`{}`, // no nodes
		`{"nodes":[{"id":"","listen":"x:1"}]}`,
		`{"nodes":[{"id":"A"}]}`, // no listen
		`{"nodes":[{"id":"A","listen":"x:1"},{"id":"A","listen":"x:2"}]}`,
		`{"nodes":[{"id":"A","listen":"x:1"}],"links":[["A","A"]]}`,
		`{"nodes":[{"id":"A","listen":"x:1"}],"links":[["A","Z"]]}`,
		`{"policy":"bogus","nodes":[{"id":"A","listen":"x:1"}]}`,
	}
	for _, s := range bad {
		if _, err := ParseTopology([]byte(s)); err == nil {
			t.Errorf("ParseTopology(%s) accepted invalid topology", s)
		}
	}
}

func TestNoOpDialDoesNotResurrect(t *testing.T) {
	n, l := testNode("A", false)
	n.AddMember(Member{ID: "B", Addr: "b:1"}, true)
	n.PeerUp("B")
	l.roots = []broker.BatchSub{{SubID: "s1"}}
	n.PeerDown("B")

	// A dial that found a live link already in place made no contact
	// with the peer: it must not mark the member alive, must not
	// announce, but must resume probing over the existing link.
	n.dialDone("B", false, nil)
	if m, _ := n.Member("B"); m.State == StateAlive {
		t.Fatal("no-op dial resurrected the member")
	}
	if batches := l.sentKinds(broker.MsgSubscribeBatch); len(batches) != 0 {
		t.Fatalf("no-op dial announced: %+v", batches)
	}
	n.mu.Lock()
	linkUp := n.members["B"].linkUp
	n.mu.Unlock()
	if !linkUp {
		t.Fatal("no-op dial did not resume probing over the existing link")
	}

	// A genuinely re-established link is a recovery and heals.
	n.dialDone("B", true, nil)
	if m, _ := n.Member("B"); m.State != StateAlive {
		t.Fatalf("established dial left the member %v", m.State)
	}
	if batches := l.sentKinds(broker.MsgSubscribeBatch); len(batches) != 1 {
		t.Fatalf("established dial did not announce: %+v", batches)
	}
}
