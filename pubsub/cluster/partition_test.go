package cluster

// Partition healing on the simulator (ISSUE 5 satellite): a 3-node
// chain is partitioned, both sides keep subscribing and publishing,
// the partition heals, and post-heal delivery must converge to what a
// never-partitioned run delivers. Everything — ping misses,
// suspect→dead timeouts, reconnect backoff, the root re-announcement
// — runs on the injected simnet clock, so the whole scenario is
// deterministic and runs without sockets (and under -race).

import (
	"fmt"
	"testing"
	"time"

	"probsum/internal/broker"
	"probsum/internal/interval"
	"probsum/internal/simnet"
	"probsum/internal/store"
	"probsum/internal/subscription"
)

// simCluster is a 3-node chain B1–B2–B3 with membership nodes and
// clients alice@B1 and carol@B3.
type simCluster struct {
	t     *testing.T
	net   *simnet.Network
	clock *simnet.Clock
	ids   []string
	nodes map[string]*Node
}

func newSimCluster(t *testing.T) *simCluster {
	t.Helper()
	return newSimClusterCfg(t, Config{
		PingEvery:     500 * time.Millisecond,
		SuspectMisses: 2,
		DeadAfter:     2 * time.Second,
		GossipEvery:   time.Second,
		ReconnectMin:  500 * time.Millisecond,
		ReconnectMax:  2 * time.Second,
		Seed:          7,
	})
}

func newSimClusterCfg(t *testing.T, cfg Config) *simCluster {
	t.Helper()
	sc := &simCluster{
		t:     t,
		net:   simnet.New(),
		clock: simnet.NewClock(),
		ids:   []string{"B1", "B2", "B3"},
		nodes: make(map[string]*Node),
	}
	for _, id := range sc.ids {
		if err := sc.net.AddBroker(id, store.PolicyPairwise); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.net.Connect("B1", "B2"); err != nil {
		t.Fatal(err)
	}
	if err := sc.net.Connect("B2", "B3"); err != nil {
		t.Fatal(err)
	}
	for _, id := range sc.ids {
		n, err := NewSimNode(sc.net, id, sc.clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sc.nodes[id] = n
	}
	link := func(a, b string) {
		sc.nodes[a].AddMember(Member{ID: b, Addr: b}, true)
		sc.nodes[b].AddMember(Member{ID: a, Addr: a}, true)
	}
	link("B1", "B2")
	link("B2", "B3")
	// Non-neighbors track each other through gossip only.
	sc.nodes["B1"].AddMember(Member{ID: "B3", Addr: "B3"}, false)
	sc.nodes["B3"].AddMember(Member{ID: "B1", Addr: "B1"}, false)

	for _, c := range []struct{ client, broker string }{{"alice", "B1"}, {"carol", "B3"}} {
		if err := sc.net.AttachClient(c.client, c.broker); err != nil {
			t.Fatal(err)
		}
	}
	return sc
}

// step advances the clock by d per tick, ticking every node and
// running the network to quiescence, for the given number of ticks.
func (sc *simCluster) step(d time.Duration, ticks int) {
	sc.t.Helper()
	for i := 0; i < ticks; i++ {
		sc.clock.Advance(d)
		for _, id := range sc.ids {
			sc.nodes[id].Tick()
		}
		if _, err := sc.net.Run(); err != nil {
			sc.t.Fatal(err)
		}
	}
}

func (sc *simCluster) subscribe(client, subID string, lo, hi int64) {
	sc.t.Helper()
	s := subscription.New(interval.New(lo, hi), interval.New(lo, hi))
	if err := sc.net.ClientSubscribe(client, subID, s); err != nil {
		sc.t.Fatal(err)
	}
	if _, err := sc.net.Run(); err != nil {
		sc.t.Fatal(err)
	}
}

func (sc *simCluster) publish(client, pubID string, v int64) {
	sc.t.Helper()
	if err := sc.net.ClientPublish(client, pubID, subscription.NewPublication(v, v)); err != nil {
		sc.t.Fatal(err)
	}
	if _, err := sc.net.Run(); err != nil {
		sc.t.Fatal(err)
	}
}

// deliveredSet collects a client's notifications for the given
// publication IDs as "subID/pubID" strings.
func (sc *simCluster) deliveredSet(client string, pubIDs map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for _, m := range sc.net.Delivered(client) {
		if m.Kind == broker.MsgNotify && pubIDs[m.PubID] {
			out[fmt.Sprintf("%s/%s", m.SubID, m.PubID)] = true
		}
	}
	return out
}

func (sc *simCluster) memberState(onNode, member string) State {
	m, ok := sc.nodes[onNode].Member(member)
	if !ok {
		sc.t.Fatalf("node %s does not track %s", onNode, member)
	}
	return m.State
}

// runPartitionScenario drives the shared script, with or without the
// B1–B2 partition, and returns the per-client delivery sets of the
// post-heal probe publications.
func runPartitionScenario(t *testing.T, partition bool) (alice, carol map[string]bool, sc *simCluster) {
	sc = newSimCluster(t)

	// Assemble: the reconnect loop establishes every link.
	sc.step(250*time.Millisecond, 8)
	for _, pair := range [][2]string{{"B1", "B2"}, {"B2", "B1"}, {"B2", "B3"}, {"B3", "B2"}} {
		if got := sc.memberState(pair[0], pair[1]); got != StateAlive {
			t.Fatalf("after assembly %s sees %s as %v", pair[0], pair[1], got)
		}
	}

	// Pre-partition subscriptions on both edges of the chain.
	sc.subscribe("alice", "a1", 0, 100)
	sc.subscribe("carol", "c1", 200, 300)

	if partition {
		sc.net.SetLink("B1", "B2", false)
		// Let the failure detector walk alive → suspect → dead on both
		// sides of the cut (and gossip the verdict to B3).
		sc.step(250*time.Millisecond, 40)
		if got := sc.memberState("B1", "B2"); got != StateDead {
			t.Fatalf("B1 sees B2 as %v mid-partition, want dead", got)
		}
		if got := sc.memberState("B2", "B1"); got != StateDead {
			t.Fatalf("B2 sees B1 as %v mid-partition, want dead", got)
		}
		if got := sc.memberState("B3", "B1"); got != StateDead {
			t.Fatalf("gossip did not carry B1's death to B3: %v", got)
		}
	} else {
		sc.step(250*time.Millisecond, 40)
	}

	// Both sides keep operating: new subscriptions (whose floods are
	// lost across the cut) and publications (those crossing the cut
	// are lost — the at-most-once tolerance the protocol documents).
	sc.subscribe("alice", "a2", 400, 450)
	sc.subscribe("carol", "c2", 600, 650)
	sc.publish("alice", "pm1", 250) // would match c1 across the cut
	sc.publish("carol", "pm2", 50)  // would match a1 across the cut

	if partition {
		sc.net.SetLink("B1", "B2", true)
		if sc.net.PartitionDropped() == 0 {
			t.Fatal("partition dropped nothing; the scenario is vacuous")
		}
	}
	// Heal: the reconnect loop re-dials (jittered backoff), the link
	// comes back, and both sides re-announce their coverage roots.
	sc.step(250*time.Millisecond, 40)
	if partition {
		for _, pair := range [][2]string{{"B1", "B2"}, {"B2", "B1"}, {"B3", "B1"}} {
			if got := sc.memberState(pair[0], pair[1]); got != StateAlive {
				t.Fatalf("after heal %s sees %s as %v", pair[0], pair[1], got)
			}
		}
	}

	// Post-heal probes: every subscription — including the ones whose
	// original flood was lost in the partition — must route across the
	// whole chain again.
	probes := map[string]bool{"q1": true, "q2": true, "q3": true, "q4": true}
	sc.publish("alice", "q1", 620) // c2, announced only during the cut
	sc.publish("carol", "q2", 420) // a2, announced only during the cut
	sc.publish("alice", "q3", 250) // c1, pre-partition
	sc.publish("carol", "q4", 50)  // a1, pre-partition
	return sc.deliveredSet("alice", probes), sc.deliveredSet("carol", probes), sc
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestFlapDuringBackfillDigestGC pins the flap-mid-SUBBATCH repair: a
// link that drops AGAIN between the heal backfill and the digest
// round leaves the receiver holding a reverse-path entry for a
// subscription the sender retired during the first cut (the
// unsubscribe died on the dead link, and the backfill only adds — it
// never asserts completeness). The next digest reconciliation must GC
// that entry through the full unsubscribe machinery — received set,
// coverage table toward third parties, and a downstream UNSUBBATCH —
// not merely stop counting it, or every flap inflates the neighbor
// tables a little more and re-delivers retired subscriptions forever.
func TestFlapDuringBackfillDigestGC(t *testing.T) {
	// Gossip (which carries the link digest) runs at 5s against 250ms
	// sim ticks, so the heal backfill and the digest round land on
	// clearly different ticks and the flap can be wedged between them.
	sc := newSimClusterCfg(t, Config{
		PingEvery:     500 * time.Millisecond,
		SuspectMisses: 2,
		DeadAfter:     2 * time.Second,
		GossipEvery:   5 * time.Second,
		ReconnectMin:  500 * time.Millisecond,
		ReconnectMax:  2 * time.Second,
		Seed:          7,
	})
	sc.step(250*time.Millisecond, 8)
	for _, pair := range [][2]string{{"B1", "B2"}, {"B2", "B1"}, {"B2", "B3"}, {"B3", "B2"}} {
		if got := sc.memberState(pair[0], pair[1]); got != StateAlive {
			t.Fatalf("after assembly %s sees %s as %v", pair[0], pair[1], got)
		}
	}
	b2, b3 := sc.net.Broker("B2"), sc.net.Broker("B3")
	received := func(sub string) bool {
		for _, id := range b2.ReceivedFrom("B1") {
			if id == sub {
				return true
			}
		}
		return false
	}

	sc.subscribe("alice", "a1", 0, 100)
	sc.subscribe("carol", "c1", 200, 300)
	if !received("a1") {
		t.Fatal("a1 never flooded to B2; the scenario is vacuous")
	}

	// First cut. While it stands, alice retires a1 (the UNSUBSCRIBE
	// toward B2 dies on the dead link) and opens a2.
	sc.net.SetLink("B1", "B2", false)
	sc.step(250*time.Millisecond, 40)
	if err := sc.net.ClientUnsubscribe("alice", "a1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.net.Run(); err != nil {
		t.Fatal(err)
	}
	sc.subscribe("alice", "a2", 400, 450)

	// First heal: run only until the backfill SUBBATCH {a2} lands on
	// B2, then flap the link again — before any digest round.
	sc.net.SetLink("B1", "B2", true)
	backfilled := false
	for i := 0; i < 40 && !backfilled; i++ {
		sc.step(250*time.Millisecond, 1)
		backfilled = received("a2")
	}
	if !backfilled {
		t.Fatal("backfill never reached B2 after the heal")
	}
	if !received("a1") {
		t.Fatal("a1 already reconciled at backfill time; the flap cannot land between backfill and digest")
	}
	sc.net.SetLink("B1", "B2", false)
	sc.step(250*time.Millisecond, 40)

	// Second heal, this time to quiescence: reconnect, duplicate
	// backfill, and at least one full digest round trip.
	sc.net.SetLink("B1", "B2", true)
	sc.step(250*time.Millisecond, 60)

	// The stale reverse-path entry is gone from the link's received
	// set, and the digest pair agrees in both directions.
	if received("a1") {
		t.Error("B2 still lists a1 as received from B1 after reconciliation")
	}
	if !received("a2") {
		t.Error("reconciliation dropped the live a2")
	}
	for _, dir := range [][2]string{{"B1", "B2"}, {"B2", "B1"}} {
		sender, receiver := sc.net.Broker(dir[0]), sc.net.Broker(dir[1])
		if sent, ok := sender.LinkDigest(dir[1]); ok && sent != receiver.ReceivedDigest(dir[0]) {
			t.Errorf("%s→%s digests diverge after reconciliation", dir[0], dir[1])
		}
	}
	// The GC ran the full unsubscribe machinery: B2's coverage table
	// toward B3 no longer carries a1 (no inflation), and the
	// downstream UNSUBBATCH purged B3 too.
	for _, root := range b2.NeighborRoots("B3") {
		if root.SubID == "a1" {
			t.Error("B2's table toward B3 still carries the retired a1")
		}
	}
	if src, ok := b3.KnowsSubscription("a1"); ok {
		t.Errorf("B3 still knows a1 (via %s); the stale-entry GC did not propagate downstream", src)
	}
	// And delivery agrees: a publication in a1's old range goes
	// nowhere, one in a2's range reaches alice.
	sc.publish("carol", "q-old", 50)
	sc.publish("carol", "q-new", 420)
	probes := map[string]bool{"q-old": true, "q-new": true}
	got := sc.deliveredSet("alice", probes)
	want := map[string]bool{"a2/q-new": true}
	if !setsEqual(got, want) {
		t.Errorf("alice deliveries after the flap: got %v, want %v", got, want)
	}
}

func TestPartitionHealsToOracle(t *testing.T) {
	oracleAlice, oracleCarol, _ := runPartitionScenario(t, false)
	healedAlice, healedCarol, sc := runPartitionScenario(t, true)

	// The oracle must actually deliver across the chain, or the
	// comparison proves nothing.
	if !oracleCarol["c2/q1"] || !oracleAlice["a2/q2"] || !oracleCarol["c1/q3"] || !oracleAlice["a1/q4"] {
		t.Fatalf("oracle deliveries incomplete: alice %v carol %v", oracleAlice, oracleCarol)
	}
	if !setsEqual(healedAlice, oracleAlice) {
		t.Errorf("alice post-heal deliveries diverge from oracle:\n healed %v\n oracle %v", healedAlice, oracleAlice)
	}
	if !setsEqual(healedCarol, oracleCarol) {
		t.Errorf("carol post-heal deliveries diverge from oracle:\n healed %v\n oracle %v", healedCarol, oracleCarol)
	}

	// The healing protocol itself: each side of the cut re-announced
	// its roots exactly once, as ONE batch.
	m1, m2 := sc.nodes["B1"].Metrics(), sc.nodes["B2"].Metrics()
	if m1.ReannounceBatches != 1 || m1.ReannouncedSubs != 2 {
		t.Errorf("B1 reannounce metrics = %+v, want 1 batch of 2", m1)
	}
	if m2.ReannounceBatches != 1 || m2.ReannouncedSubs != 2 {
		t.Errorf("B2 reannounce metrics = %+v, want 1 batch of 2", m2)
	}
	if m1.Deaths == 0 || m1.Recoveries == 0 || m1.DialFailures == 0 {
		t.Errorf("B1 failure-detector metrics did not move: %+v", m1)
	}
	// The re-announced batch reached the downstream coverage table as
	// ONE batch admission: B2's table toward B3 admitted {a2} (a1 was
	// deduplicated as already known).
	tm, ok := sc.net.Broker("B2").NeighborTableMetrics("B3")
	if !ok {
		t.Fatal("B2 has no coverage table for B3")
	}
	if tm.Batches != 1 || tm.BatchItems != 1 {
		t.Errorf("B2→B3 table admissions: %d batches with %d items, want 1 batch of 1 (metrics %+v)",
			tm.Batches, tm.BatchItems, tm)
	}
}
