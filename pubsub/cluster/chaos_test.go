package cluster

// Chaos smoke: three fixed seeds drive the deterministic fault
// harness and each faulted run must (a) converge every link digest
// within the bounded heal phase and (b) deliver the post-heal probe
// publications exactly as the fault-free oracle run of the same seed
// does. Runs under -race in CI.

import (
	"fmt"
	"strings"
	"testing"
)

// dumpFlight attaches the run's flight-recorder tail to a failing
// test: the sequence of crashes, partitions, suspicions, deaths, and
// repairs that led to the divergence.
func dumpFlight(t *testing.T, label string, dump []string) {
	t.Helper()
	if len(dump) == 0 {
		return
	}
	t.Logf("%s flight recorder (%d events):\n%s", label, len(dump), strings.Join(dump, "\n"))
}

func TestChaosConvergesToOracle(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			oracle, err := RunChaos(ChaosConfig{Seed: seed})
			if err != nil {
				t.Fatalf("oracle run: %v", err)
			}
			chaos, err := RunChaos(ChaosConfig{Seed: seed, Faults: true})
			if err != nil {
				t.Fatalf("chaos run: %v", err)
			}

			if chaos.Crashes+chaos.Partitions == 0 {
				t.Fatalf("seed scheduled no faults; the scenario is vacuous")
			}
			if len(chaos.FlightDump) == 0 {
				t.Error("faulted run recorded no flight events")
			}
			if !chaos.Converged {
				t.Fatalf("link digests did not converge within the heal bound (%d rounds)", chaos.HealRounds)
			}
			total := 0
			for _, set := range oracle.Deliveries {
				total += len(set)
			}
			if total == 0 {
				t.Fatalf("oracle delivered nothing; the comparison proves nothing")
			}
			for client, want := range oracle.Deliveries {
				got := chaos.Deliveries[client]
				if !setsEqual(got, want) {
					t.Errorf("%s probe deliveries diverge from oracle:\n chaos  %v\n oracle %v", client, got, want)
				}
			}
			if t.Failed() {
				dumpFlight(t, "chaos", chaos.FlightDump)
			}
			t.Logf("seed %d: %d crashes, %d partitions, %d subs, %d unsubs, %d records recovered, healed in %d rounds, %d sync requests, %d roots resent, %d stale pruned, %d probes, %d deliveries",
				seed, chaos.Crashes, chaos.Partitions, chaos.Subscribes, chaos.Unsubscribes,
				chaos.Recovered, chaos.HealRounds, chaos.SyncRequests, chaos.RootsResent, chaos.StalePruned,
				chaos.Probes, total)
		})
	}
}

// TestChaosKillRendezvousRoutes crashes the rendezvous owner of the
// schedule's home cell mid-run while subscriptions route toward it,
// and requires the routed, faulted run to deliver the post-heal
// probes exactly as the flood, fault-free oracle of the same seed —
// re-routing after a rendezvous death must lose nothing the flood
// protocol would have delivered.
func TestChaosKillRendezvousRoutes(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			oracle, err := RunChaos(ChaosConfig{Seed: seed, KillRendezvous: true})
			if err != nil {
				t.Fatalf("oracle run: %v", err)
			}
			routed, err := RunChaos(ChaosConfig{Seed: seed, KillRendezvous: true, Faults: true, Routed: true})
			if err != nil {
				t.Fatalf("routed chaos run: %v", err)
			}
			if routed.Crashes == 0 {
				t.Fatal("no crash scheduled; the rendezvous was never killed")
			}
			if routed.RoutedSubs == 0 {
				t.Fatal("no subscription took the rendezvous path; the routed run is vacuous")
			}
			if oracle.RoutedSubs != 0 {
				t.Fatalf("flood oracle routed %d subscriptions, want 0", oracle.RoutedSubs)
			}
			if !routed.Converged {
				t.Fatalf("link digests did not converge within the heal bound (%d rounds)", routed.HealRounds)
			}
			total := 0
			for _, set := range oracle.Deliveries {
				total += len(set)
			}
			if total == 0 {
				t.Fatal("oracle delivered nothing; the comparison proves nothing")
			}
			for client, want := range oracle.Deliveries {
				got := routed.Deliveries[client]
				if !setsEqual(got, want) {
					t.Errorf("%s probe deliveries diverge from flood oracle:\n routed %v\n oracle %v", client, got, want)
				}
			}
			if t.Failed() {
				dumpFlight(t, "routed", routed.FlightDump)
			}
			t.Logf("seed %d: %d crashes, %d partitions, healed in %d rounds, %d probes, %d deliveries",
				seed, routed.Crashes, routed.Partitions, routed.HealRounds, routed.Probes, total)
		})
	}
}
