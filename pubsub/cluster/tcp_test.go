package cluster

// Real-socket cluster tests (ISSUE 5 acceptance): a 3-broker cluster
// started from one topology survives a broker kill + restart — the
// reconnect loop restores the link, the coverage roots are
// re-announced as ONE SUBBATCH, and delivery resumes; peers without a
// cluster layer are never sent control frames; and a seed-node
// cluster assembles itself into a mesh through gossip.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"probsum/internal/broker"
	"probsum/internal/interval"
	"probsum/internal/subscription"
	"probsum/pubsub"
)

// fastConfig keeps detector and reconnect timings test-sized.
func fastConfig() Config {
	return Config{
		PingEvery:     50 * time.Millisecond,
		SuspectMisses: 2,
		DeadAfter:     200 * time.Millisecond,
		GossipEvery:   100 * time.Millisecond,
		ReconnectMin:  50 * time.Millisecond,
		ReconnectMax:  300 * time.Millisecond,
		TickEvery:     20 * time.Millisecond,
	}
}

// freeAddrs reserves n distinct loopback addresses. The topology needs
// concrete addresses up front (a restarted broker must come back on
// the SAME one), so ephemeral :0 binding cannot be used directly.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	out := make([]string, n)
	for i := range out {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ln.Addr().String()
		ln.Close()
	}
	return out
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func tcpShutdown(t *testing.T, b *pubsub.Broker) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	b.Shutdown(ctx)
}

func tile2(lo, hi int64) pubsub.Subscription {
	return subscription.New(interval.New(lo, hi), interval.New(lo, hi))
}

func recvNotification(t *testing.T, c *pubsub.Client, d time.Duration, pubID string) pubsub.Notification {
	t.Helper()
	deadline := time.After(d)
	for {
		select {
		case n, ok := <-c.Notifications():
			if !ok {
				t.Fatal("notification channel closed")
			}
			if n.PubID == pubID {
				return n
			}
		case <-deadline:
			t.Fatalf("notification for %s did not arrive", pubID)
		}
	}
}

// TestClusterKillRestartTCP is the ISSUE 5 acceptance scenario.
func TestClusterKillRestartTCP(t *testing.T) {
	addrs := freeAddrs(t, 3)
	topo := &Topology{
		Policy: "pairwise",
		Nodes: []TopologyNode{
			{ID: "B1", Listen: addrs[0]},
			{ID: "B2", Listen: addrs[1]},
			{ID: "B3", Listen: addrs[2]},
		},
		Links: [][2]string{{"B1", "B2"}, {"B2", "B3"}},
	}
	cfg := fastConfig()

	n1, b1, err := Start(topo, "B1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { n1.Close(); tcpShutdown(t, b1) }()
	n2, b2, err := Start(topo, "B2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	n3, b3, err := Start(topo, "B3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { n3.Close(); tcpShutdown(t, b3) }()

	// The cluster assembles itself regardless of boot order.
	waitFor(t, 10*time.Second, "cluster assembly", func() bool {
		for _, pair := range [][2]*Node{{n1, n2}, {n2, n1}, {n2, n3}, {n3, n2}} {
			m, ok := pair[0].Member(pair[1].link.Self())
			if !ok || m.State != StateAlive {
				return false
			}
		}
		return true
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	alice, err := pubsub.Dial(ctx, b1.Addr(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	if err := alice.Subscribe(ctx, "s1", tile2(0, 100)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "s1 to reach B3", func() bool { return b3.Metrics().SubsReceived == 1 })

	bob, err := pubsub.Dial(ctx, b3.Addr(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	if err := bob.Publish(ctx, "p1", subscription.NewPublication(50, 50)); err != nil {
		t.Fatal(err)
	}
	if n := recvNotification(t, alice, 5*time.Second, "p1"); n.SubID != "s1" {
		t.Fatalf("p1 delivered under %s", n.SubID)
	}

	// Kill the middle broker.
	n2.Close()
	tcpShutdown(t, b2)
	waitFor(t, 10*time.Second, "B1 to declare B2 dead", func() bool {
		m, _ := n1.Member("B2")
		return m.State == StateDead
	})

	// Subscribe while the middle is down: the flood toward B2 is lost
	// on the wire (B1's coverage table for B2 admits it regardless).
	if err := alice.Subscribe(ctx, "s2", tile2(400, 500)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "B1 to admit s2", func() bool { return b1.Metrics().SubsReceived == 2 })
	if got := b3.Metrics().SubsReceived; got != 1 {
		t.Fatalf("B3 received %d subscriptions while B2 was down", got)
	}

	// Restart B2 from the same topology file contents: the survivors'
	// reconnect loops re-dial it, and B1 re-announces its roots —
	// {s1, s2} — as ONE SUBBATCH that B2 admits and forwards to B3.
	n2b, b2b, err := Start(topo, "B2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { n2b.Close(); tcpShutdown(t, b2b) }()

	// Generous bound: `go test ./...` runs the CPU-bound 1k-broker
	// scale harness in a parallel package, which can starve this
	// test's 50ms detector timings on small machines.
	waitFor(t, 30*time.Second, "B2 recovery and root re-announcement to reach B3", func() bool {
		m1, _ := n1.Member("B2")
		m3, _ := n3.Member("B2")
		return m1.State == StateAlive && m3.State == StateAlive && b3.Metrics().SubsReceived == 2
	})

	// On TCP the re-announcement is the transport's link sync (the
	// cluster node stays quiet — see Link.SyncOnConnect), so the pin
	// is receiver-side: the restarted broker admitted the re-announced
	// roots as ONE batch call into its coverage table toward B3.
	tm, ok := b2b.NeighborTableMetrics("B3")
	if !ok {
		t.Fatal("restarted B2 has no coverage table for B3")
	}
	if tm.Batches != 1 || tm.BatchItems != 2 {
		t.Errorf("restarted B2→B3 admissions: %d batches with %d items, want 1 batch of 2 (metrics %+v)",
			tm.Batches, tm.BatchItems, tm)
	}

	// Post-heal delivery matches the never-failed oracle: publications
	// matching both the pre-kill and the mid-outage subscription
	// arrive end to end. Publication transport is at-most-once (a port
	// still settling right at the heal boundary may drop one frame),
	// so probe with fresh IDs until one delivers — the subscription
	// ROUTING state, which is what healing restores, must be in place.
	publishUntil(t, bob, alice, "p2", subscription.NewPublication(420, 420), "s2")
	publishUntil(t, bob, alice, "p3", subscription.NewPublication(60, 60), "s1")
}

// publishUntil publishes p under fresh IDs (prefix-i) until the
// subscriber sees one, failing after a few attempts. Retrying with
// fresh IDs is exactly what an at-most-once producer does; a broken
// routing path fails every attempt and the test.
func publishUntil(t *testing.T, pub, sub *pubsub.Client, prefix string, p pubsub.Publication, wantSub string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		pubID := fmt.Sprintf("%s-%d", prefix, i)
		if err := pub.Publish(ctx, pubID, p); err != nil {
			t.Fatal(err)
		}
		timeout := time.After(2 * time.Second)
	recv:
		for {
			select {
			case n, ok := <-sub.Notifications():
				if !ok {
					t.Fatal("notification channel closed")
				}
				if n.PubID == pubID {
					if n.SubID != wantSub {
						t.Fatalf("%s delivered under %s, want %s", pubID, n.SubID, wantSub)
					}
					return
				}
			case <-timeout:
				break recv
			}
		}
	}
	t.Fatalf("no %s-* publication delivered after 5 attempts", prefix)
}

// TestClusterNeverSendsControlToLegacyPeer pins backward interop: a
// peer that advertises no cluster protocol (a PR-4 build, modeled by
// a raw JSON acceptor that fails the test on any post-batch kind)
// receives routing traffic but never a ping, pong, or gossip frame.
func TestClusterNeverSendsControlToLegacyPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan broker.MsgKind, 64)
	fail := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			fail <- err
			return
		}
		defer conn.Close()
		dec := json.NewDecoder(conn)
		var hello pubsub.Frame
		if err := dec.Decode(&hello); err != nil || hello.Hello == "" {
			fail <- fmt.Errorf("bad hello %+v: %v", hello, err)
			return
		}
		if hello.Cluster == 0 {
			fail <- fmt.Errorf("cluster broker did not advertise the membership protocol")
			return
		}
		for {
			var fr pubsub.Frame
			if err := dec.Decode(&fr); err != nil {
				return
			}
			if fr.Msg == nil {
				continue
			}
			if fr.Msg.Kind > broker.MsgUnsubscribeBatch {
				fail <- fmt.Errorf("legacy peer received kind %v", fr.Msg.Kind)
				return
			}
			got <- fr.Msg.Kind
		}
	}()

	b, err := pubsub.ListenBroker("A", "127.0.0.1:0", pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpShutdown(t, b)
	n := Attach(b, fastConfig())
	defer n.Close()
	n.AddMember(Member{ID: "OLD", Addr: ln.Addr().String()}, true)

	waitFor(t, 5*time.Second, "link to the legacy peer", func() bool {
		m, ok := n.Member("OLD")
		return ok && m.State == StateAlive
	})

	// Routing traffic still flows to it...
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := pubsub.Dial(ctx, b.Addr(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Subscribe(ctx, "s1", tile2(0, 50)); err != nil {
		t.Fatal(err)
	}
	select {
	case k := <-got:
		if k != broker.MsgSubscribe {
			t.Fatalf("legacy peer received %v, want the forwarded subscribe", k)
		}
	case err := <-fail:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("forwarded subscribe never reached the legacy peer")
	}
	// ...and several detector/gossip periods pass without a single
	// control frame reaching it.
	select {
	case err := <-fail:
		t.Fatal(err)
	case <-time.After(500 * time.Millisecond):
	}
}

// TestClusterMixedVersionInterop pins the v4 rollout promise in both
// directions: brokers capped at the v3 and v2 vocabularies (on the
// wire, exact models of the older builds) cluster with a current v4
// broker — the v4 side falls back to full-snapshot gossip toward them
// and never leaks a SWIM frame (a legacy decoder rejects the v4
// header, which would kill the link and show up here as a dead
// member) — and gossip through the v4 seed still introduces the two
// legacy peers to each other.
func TestClusterMixedVersionInterop(t *testing.T) {
	mesh := func() Config { c := fastConfig(); c.Mesh = true; return c }
	b1, err := pubsub.ListenBroker("B1", "127.0.0.1:0", pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpShutdown(t, b1)
	n1 := Attach(b1, mesh())
	defer n1.Close()

	seeds := map[string]string{"B1": b1.Addr()}
	n2, b2, err := Join("V3", "127.0.0.1:0", seeds, pubsub.Pairwise, pubsub.Config{}, mesh(),
		pubsub.WithWireCodec(pubsub.CodecBinary3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { n2.Close(); tcpShutdown(t, b2) }()
	n3, b3, err := Join("V2", "127.0.0.1:0", seeds, pubsub.Pairwise, pubsub.Config{}, mesh(),
		pubsub.WithWireCodec(pubsub.CodecBinary2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { n3.Close(); tcpShutdown(t, b3) }()

	nodes := map[string]*Node{"B1": n1, "V3": n2, "V2": n3}
	waitFor(t, 10*time.Second, "every broker to see every other alive", func() bool {
		for self, n := range nodes {
			for other := range nodes {
				if other == self {
					continue
				}
				if m, ok := n.Member(other); !ok || m.State != StateAlive {
					return false
				}
			}
		}
		return true
	})
	// Hold the mixed cluster through several detector and gossip
	// periods: a v4 frame leaked toward a legacy peer would fail its
	// decoder, drop the link, and flip a member out of alive.
	time.Sleep(500 * time.Millisecond)
	for self, n := range nodes {
		for other := range nodes {
			if other == self {
				continue
			}
			if m, ok := n.Member(other); !ok || m.State != StateAlive {
				t.Fatalf("%s sees %s in state %v after steady mixed-version traffic", self, other, m.State)
			}
		}
	}
	// Routing traffic crosses the version boundary too: a subscription
	// on the v2 broker matches a publication from the v4 one.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub, err := pubsub.Dial(ctx, b3.Addr(), "legacy-subscriber")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(ctx, "s1", tile2(0, 50)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "the subscription to reach B1", func() bool {
		return b1.Metrics().SubsReceived > 0
	})
	pub, err := pubsub.Dial(ctx, b1.Addr(), "modern-publisher")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish(ctx, "p1", subscription.NewPublication(25, 25)); err != nil {
		t.Fatal(err)
	}
	recvNotification(t, sub, 10*time.Second, "p1")
}

// TestClusterSeedMeshDiscovery pins self-assembly from a seed list:
// two brokers that only know the seed discover each other through
// gossip and link directly (mesh mode).
func TestClusterSeedMeshDiscovery(t *testing.T) {
	b1, err := pubsub.ListenBroker("B1", "127.0.0.1:0", pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpShutdown(t, b1)
	n1 := Attach(b1, func() Config { c := fastConfig(); c.Mesh = true; return c }())
	defer n1.Close()

	seeds := map[string]string{"B1": b1.Addr()}
	n2, b2, err := Join("B2", "127.0.0.1:0", seeds, pubsub.Pairwise, pubsub.Config{}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { n2.Close(); tcpShutdown(t, b2) }()
	n3, b3, err := Join("B3", "127.0.0.1:0", seeds, pubsub.Pairwise, pubsub.Config{}, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { n3.Close(); tcpShutdown(t, b3) }()

	// B2 and B3 never heard of each other; gossip through B1 must
	// introduce them, and mesh mode must link them directly.
	waitFor(t, 10*time.Second, "B2 and B3 to discover each other", func() bool {
		m23, ok23 := n2.Member("B3")
		m32, ok32 := n3.Member("B2")
		return ok23 && ok32 && m23.State == StateAlive && m32.State == StateAlive
	})
	waitFor(t, 10*time.Second, "a direct B2–B3 overlay link", func() bool {
		_, ok := b2.NeighborTableMetrics("B3")
		return ok
	})
}

// TestClusterDiskRejoin pins durable membership end to end: a broker
// that joined a cluster via a seed node, persisted its member list,
// and shut down rejoins the SAME cluster on restart from its data
// directory alone — no seed node, no topology file.
func TestClusterDiskRejoin(t *testing.T) {
	dir := t.TempDir()
	b1, err := pubsub.ListenBroker("B1", "127.0.0.1:0", pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpShutdown(t, b1)
	n1 := Attach(b1, func() Config { c := fastConfig(); c.Mesh = true; return c }())
	defer n1.Close()

	seeds := map[string]string{"B1": b1.Addr()}
	n2, b2, err := Join("B2", "127.0.0.1:0", seeds, pubsub.Pairwise, pubsub.Config{},
		fastConfig(), pubsub.WithDataDir(dir), pubsub.WithJournalSync(1))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "first life to see B1 alive", func() bool {
		m, ok := n2.Member("B1")
		return ok && m.State == StateAlive
	})
	// Let at least one persist debounce window elapse, then shut down
	// gracefully (the final snapshot also carries the member list via
	// the journal's member source).
	time.Sleep(3 * fastConfig().GossipEvery)
	n2.Close()
	tcpShutdown(t, b2)

	// Second life: same data directory, NO seeds, no topology — the
	// recovered member list is the only way back to the cluster.
	b2r, err := pubsub.ListenBroker("B2", "127.0.0.1:0", pubsub.Pairwise, pubsub.Config{},
		pubsub.WithDataDir(dir), pubsub.WithJournalSync(1))
	if err != nil {
		t.Fatal(err)
	}
	defer tcpShutdown(t, b2r)
	rs, ok := b2r.Recovery()
	if !ok || len(rs.Members) == 0 {
		t.Fatalf("recovery = %+v, %v; want a persisted member list", rs, ok)
	}
	n2r := Attach(b2r, func() Config { c := fastConfig(); c.Mesh = true; return c }())
	defer n2r.Close()

	waitFor(t, 10*time.Second, "disk rejoin to re-link B1", func() bool {
		m, ok := n2r.Member("B1")
		return ok && m.State == StateAlive
	})
	waitFor(t, 10*time.Second, "B1 to see the rejoined B2 alive", func() bool {
		m, ok := n1.Member("B2")
		return ok && m.State == StateAlive
	})
}
