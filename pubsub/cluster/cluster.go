package cluster

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"probsum/internal/broker"
	"probsum/internal/obs"
)

// Link is the cluster node's view of its broker's overlay links — the
// only thing membership needs from a transport. pubsub TCP brokers and
// simulator brokers both satisfy it (see Attach and NewSimNode).
type Link interface {
	// Self returns the local broker's identifier.
	Self() string
	// Send queues one protocol message toward a peer, best-effort,
	// under the transport's wire-vocabulary negotiation. It reports
	// whether a live (and, for control kinds, cluster-capable) link
	// existed.
	Send(peer string, msg broker.Message) bool
	// Connect (re)establishes the link to a peer and reports the
	// result through done: established says whether THIS attempt
	// created the link (false with a nil error when a live link
	// already existed — which proves nothing about the peer, since
	// that connection may be stalled). The TCP implementation dials on
	// its own goroutine (done runs there); the simulator one answers
	// inline, which keeps simulated runs deterministic.
	Connect(peer, addr string, done func(established bool, err error))
	// Roots exports the coverage roots to re-announce to a recovered
	// peer: the active set of the local coverage table for that peer.
	Roots(peer string) []broker.BatchSub
	// ClusterCapable reports whether the peer advertised the
	// membership protocol — peers that did not are never pinged (their
	// links are still reconnected on loss).
	ClusterCapable(peer string) bool
	// SyncOnConnect reports whether the transport itself synchronizes
	// the coverage roots over a freshly connected link (the TCP
	// transport sends them as one SUBBATCH after every successful peer
	// dial). When it does, the node does not re-announce on recovery —
	// the link layer already did; when it does not (the simulator,
	// whose "dials" are logical), the node sends the announcement.
	SyncOnConnect() bool
	// Digest returns the broker's sender-side subscription digest for
	// the link to peer, false when the link has no digest to offer or
	// the peer cannot decode one (pre-v3 wire vocabulary). Gossip
	// toward the peer piggybacks it, which is what arms the
	// anti-entropy reconciliation.
	Digest(peer string) (broker.LinkDigest, bool)
	// DeltaCapable reports whether the peer's advertised wire
	// vocabulary includes the SWIM kinds (ping-req, gossip-delta, and
	// delta piggybacks — wire v4). Toward peers that are not, the
	// node falls back to full-snapshot gossip and never asks them to
	// relay an indirect probe.
	DeltaCapable(peer string) bool
}

// Config tunes a membership node. Zero values select the defaults
// noted on each field.
type Config struct {
	// PingEvery is the failure-detector probe interval (500ms).
	PingEvery time.Duration
	// SuspectMisses is how many unanswered pings move an alive member
	// to suspect (2).
	SuspectMisses int
	// DeadAfter is how long a member stays suspect before it is
	// declared dead (4 × PingEvery).
	DeadAfter time.Duration
	// GossipEvery is the anti-entropy interval: a gossip frame (a
	// bounded delta batch toward v4 peers, the full member list toward
	// older ones) goes to every live linked peer this often
	// (2 × PingEvery).
	GossipEvery time.Duration
	// ReconnectMin / ReconnectMax bound the re-dial backoff for down
	// links: attempts double from Min to Max with seeded jitter
	// (PingEvery/2 and 16 × ReconnectMin).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// TickEvery is the background tick period of TCP-attached nodes
	// (PingEvery / 4); simulator nodes are ticked manually instead.
	TickEvery time.Duration
	// Incarnation is the node's own starting incarnation (1).
	Incarnation uint64
	// Seed feeds the backoff-jitter and probe-selection streams, mixed
	// with the node ID so cluster members never thunder in lockstep (1).
	Seed uint64
	// Clock supplies the node's time (time.Now). Simulator tests
	// inject a simnet.Clock for fully deterministic schedules.
	Clock func() time.Time
	// Events, when set, receives membership flight events (suspicions,
	// deaths, recoveries, re-announce batches) for post-mortem dumps —
	// the chaos harness attaches one recorder across all its nodes and
	// includes the dump in failure reports. Nil disables recording.
	Events *obs.FlightRecorder
	// Mesh links every member discovered through gossip (seed-node
	// operation: the overlay converges to a full mesh). Without it
	// only explicitly added peers are linked (topology operation).
	Mesh bool
	// ProbeFanout is how many of the due linked members receive a
	// direct ping per tick (2) — SWIM's k. When no more than
	// ProbeFanout members are due they are all probed, so small
	// clusters keep the every-neighbor cadence.
	ProbeFanout int
	// IndirectRelays is how many relays receive a PING-REQ when a
	// member's direct probe already stands unanswered (2) — SWIM's r.
	// Negative disables indirect probing.
	IndirectRelays int
	// RetransmitMult is the λ of the per-update retransmit budget
	// λ·⌈log₂ n⌉ (3): how many frames each membership update rides
	// before it is dropped from the delta queue.
	RetransmitMult int
	// MaxDeltasPerFrame bounds the membership updates piggybacked on
	// one control frame (6).
	MaxDeltasPerFrame int
	// LegacyGossip forces full-snapshot gossip toward every peer and
	// disables delta piggybacks/indirect relays' delta tails even when
	// the peer is v4-capable — the full-snapshot oracle the delta
	// convergence tests compare against, and a rollback knob.
	LegacyGossip bool
}

func (c Config) withDefaults() Config {
	if c.PingEvery <= 0 {
		c.PingEvery = 500 * time.Millisecond
	}
	if c.SuspectMisses <= 0 {
		c.SuspectMisses = 2
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 4 * c.PingEvery
	}
	if c.GossipEvery <= 0 {
		c.GossipEvery = 2 * c.PingEvery
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = c.PingEvery / 2
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 16 * c.ReconnectMin
	}
	if c.TickEvery <= 0 {
		c.TickEvery = max(c.PingEvery/4, time.Millisecond)
	}
	if c.Incarnation == 0 {
		c.Incarnation = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ProbeFanout <= 0 {
		c.ProbeFanout = 2
	}
	// Negative stays negative (disabled) so the sentinel survives
	// repeated default application.
	if c.IndirectRelays == 0 {
		c.IndirectRelays = 2
	}
	if c.RetransmitMult <= 0 {
		c.RetransmitMult = 3
	}
	if c.MaxDeltasPerFrame <= 0 {
		c.MaxDeltasPerFrame = 6
	}
	if c.Clock == nil {
		//brokervet:allow clockcheck this IS the clock injection point: the default for production wiring, overridden by simnet in deterministic tests
		c.Clock = time.Now
	}
	return c
}

// NodeMetrics counts a membership node's activity.
type NodeMetrics struct {
	PingsSent     uint64
	PongsReceived uint64
	// Suspects / Deaths / Recoveries count state transitions of
	// tracked members as seen by this node.
	Suspects   uint64
	Deaths     uint64
	Recoveries uint64
	// ReannounceBatches counts root re-announcements sent (one
	// SUBBATCH each); ReannouncedSubs the subscriptions they carried.
	ReannounceBatches uint64
	ReannouncedSubs   uint64
	GossipSent        uint64 // full-snapshot gossip frames sent
	GossipMerged      uint64 // remote claims adopted (or members learned)
	Dials             uint64
	DialFailures      uint64
	// SWIM dissemination counters.
	DeltaFramesSent  uint64 // gossip-delta frames sent
	DeltaUpdatesSent uint64 // membership updates carried by any frame
	PingReqsSent     uint64 // indirect probes requested of relays
	PingReqsRelayed  uint64 // indirect probes this node relayed
	IndirectAcks     uint64 // members kept alive by a relay's ack
	MemberSyncs      uint64 // full snapshots pushed on a view-hash mismatch
	// ControlBytesSent estimates the wire bytes of every control frame
	// sent (v4 binary encoding) — the scale harness's traffic gauge.
	ControlBytesSent uint64
}

// relayReq is one standing obligation to answer an indirect-probe
// origin once (if) the target pongs.
type relayReq struct {
	origin  string
	seq     uint64
	expires time.Time
}

// queuedUpdate is one membership rumor awaiting dissemination, with
// the retransmissions it has left.
type queuedUpdate struct {
	info      broker.MemberInfo
	remaining int
}

// Node is the membership side of one broker: member list, failure
// detector, gossip, and the reconnect/heal loop. All methods are safe
// for concurrent use; time advances only through Tick (which TCP
// nodes run on a background ticker and simulator tests call
// manually).
type Node struct {
	link Link
	cfg  Config
	// +guarded_by:mu
	rng *rand.Rand // jitter and probe-selection stream

	mu sync.Mutex
	// +guarded_by:mu
	self Member
	// +guarded_by:mu
	members map[string]*memberState
	// order and linkedOrder are the deterministic iteration orders
	// (ascending ID), maintained incrementally so a node tracking
	// thousands of gossip-learned members never re-sorts per tick and
	// Tick touches only the linked ones.
	// +guarded_by:mu
	order []*memberState
	// +guarded_by:mu
	linkedOrder []*memberState
	// +guarded_by:mu
	lastGossip time.Time
	// +guarded_by:mu
	metrics NodeMetrics

	// The delta-dissemination queue: pending updates by member ID plus
	// a round-robin send order (qHead is the consumed prefix).
	// +guarded_by:mu
	updates map[string]*queuedUpdate
	// +guarded_by:mu
	updateQueue []string
	// +guarded_by:mu
	qHead int
	// pendingRelay holds, per probe target, the indirect-probe origins
	// awaiting this node's vouch.
	// +guarded_by:mu
	pendingRelay map[string][]relayReq

	// Durable membership: persistFn (when set) receives the wire-form
	// member list, debounced to once per GossipEvery while dirty.
	// +guarded_by:mu
	persistFn func([]broker.MemberInfo)
	// +guarded_by:mu
	persistDirty bool
	// +guarded_by:mu
	lastPersist time.Time

	// Anti-entropy view hash: an order-independent digest of the whole
	// member map (self included), carried on outgoing gossip-delta
	// frames and compared against inbound ones. Cached until a member
	// record mutates.
	// +guarded_by:mu
	viewHash uint64
	// +guarded_by:mu
	viewDirty bool

	// routeEpoch counts member-view mutations (new members, state or
	// incarnation changes, link health transitions). The attached
	// router's cached rendezvous view rebuilds lazily when it falls
	// behind this counter (see route.go).
	routeEpoch atomic.Uint64

	// router, when attached, recomputes rendezvous routes after
	// membership changes: Tick kicks it once per call, and the kick
	// no-ops until routeEpoch moves.
	router atomic.Pointer[Router]

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewNode builds a membership node around a link. The node is
// passive until Tick is called (or a background ticker is started by
// Attach); self's state is forced alive and its incarnation defaults
// from the config when zero.
func NewNode(self Member, link Link, cfg Config) *Node {
	cfg = cfg.withDefaults()
	self.State = StateAlive
	if self.Incarnation == 0 {
		self.Incarnation = cfg.Incarnation
	}
	return &Node{
		link:         link,
		cfg:          cfg,
		rng:          rand.New(rand.NewPCG(cfg.Seed^fnv1a(self.ID), fnv1a(self.ID)|1)),
		self:         self,
		members:      make(map[string]*memberState),
		updates:      make(map[string]*queuedUpdate),
		pendingRelay: make(map[string][]relayReq),
		viewDirty:    true,
		stop:         make(chan struct{}),
	}
}

// fnv1a hashes a string into a 64-bit seed component.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// AddMember registers a member to track. Linked members get the full
// treatment — the reconnect loop establishes and maintains their
// overlay link, the failure detector probes them — while unlinked ones
// are only carried in gossip. Members start suspect-until-contacted:
// the first successful connect (or inbound frame) makes them alive,
// and a member that never answers goes dead on the normal timeout.
// Adding an already-tracked member only widens its linkage and fills
// a missing address.
func (n *Node) AddMember(m Member, linked bool) {
	if m.ID == n.link.Self() {
		return
	}
	now := n.cfg.Clock()
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.members[m.ID]
	if st == nil {
		m.State = StateSuspect
		st = &memberState{Member: m, suspectSince: now}
		n.trackLocked(st)
		n.enqueueUpdateLocked(st.wire())
	} else if st.Addr == "" && m.Addr != "" {
		st.Addr = m.Addr
		n.viewDirty = true
	}
	if linked {
		n.linkLocked(st)
	}
}

// adoptRecovered seeds the member list from a persisted membership
// record (pubsub.RecoveryStats.Members): the local entry bumps the
// self incarnation past its pre-crash value so stale rumors about the
// previous life cannot outrank the new one; every other member is
// adopted as a linked suspect at its recorded incarnation, which puts
// the reconnect loop to work re-dialing the old overlay without a
// seed node. Nothing but the self bump is enqueued for rumor
// dissemination — the recovered entries reach peers through the
// full-snapshot sync each link performs on its first contact, so a
// cold boot does not flood the mesh with stale suspicion. Returns the
// number of peers adopted.
func (n *Node) adoptRecovered(ms []broker.MemberInfo) int {
	self := n.link.Self()
	now := n.cfg.Clock()
	n.mu.Lock()
	defer n.mu.Unlock()
	adopted := 0
	for _, mi := range ms {
		if mi.ID == self {
			if mi.Incarnation >= n.self.Incarnation {
				n.self.Incarnation = mi.Incarnation + 1
				n.enqueueUpdateLocked(n.self.wire())
			}
			continue
		}
		m := memberFromWire(mi)
		m.State = StateSuspect
		st := n.members[m.ID]
		if st == nil {
			st = &memberState{Member: m, suspectSince: now}
			n.trackLocked(st)
		} else if st.Addr == "" && m.Addr != "" {
			st.Addr = m.Addr
			n.viewDirty = true
		}
		n.linkLocked(st)
		adopted++
	}
	return adopted
}

// trackLocked registers a new member record under both iteration
// orders (the caller links it separately if needed).
//
// +mustlock:mu
func (n *Node) trackLocked(st *memberState) {
	n.viewDirty = true
	n.routeEpoch.Add(1)
	n.members[st.ID] = st
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i].ID >= st.ID })
	n.order = append(n.order, nil)
	copy(n.order[i+1:], n.order[i:])
	n.order[i] = st
}

// linkLocked marks a tracked member linked, maintaining the linked
// iteration order. Members never unlink.
//
// +mustlock:mu
func (n *Node) linkLocked(st *memberState) {
	if st.linked {
		return
	}
	st.linked = true
	n.routeEpoch.Add(1)
	i := sort.Search(len(n.linkedOrder), func(i int) bool { return n.linkedOrder[i].ID >= st.ID })
	n.linkedOrder = append(n.linkedOrder, nil)
	copy(n.linkedOrder[i+1:], n.linkedOrder[i:])
	n.linkedOrder[i] = st
}

// Members returns the current member list — the local node first,
// then the tracked members sorted by ID.
func (n *Node) Members() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.order)+1)
	out = append(out, n.self)
	for _, st := range n.order {
		out = append(out, st.Member)
	}
	return out
}

// Member returns the tracked record for id (the local node included).
func (n *Node) Member(id string) (Member, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if id == n.self.ID {
		return n.self, true
	}
	st, ok := n.members[id]
	if !ok {
		return Member{}, false
	}
	return st.Member, true
}

// AliveCount returns how many tracked members (the local node
// included) the node currently believes alive, and the total tracked.
func (n *Node) AliveCount() (alive, total int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	alive, total = 1, len(n.order)+1
	for _, st := range n.order {
		if st.State == StateAlive {
			alive++
		}
	}
	return alive, total
}

// Metrics returns a snapshot of the activity counters.
func (n *Node) Metrics() NodeMetrics {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.metrics
}

// WireMembers snapshots the member list (self first) in gossip form —
// the journal's member source for durable membership.
func (n *Node) WireMembers() []broker.MemberInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.wireMembersLocked()
}

// sortedIDsLocked lists tracked member IDs in deterministic order.
//
// +mustlock:mu
func (n *Node) sortedIDsLocked() []string {
	ids := make([]string, len(n.order))
	for i, st := range n.order {
		ids[i] = st.ID
	}
	return ids
}

// wireMembersLocked snapshots the member list (self first) in gossip
// form.
//
// +mustlock:mu
func (n *Node) wireMembersLocked() []broker.MemberInfo {
	out := make([]broker.MemberInfo, 0, len(n.order)+1)
	out = append(out, n.self.wire())
	for _, st := range n.order {
		out = append(out, st.Member.wire())
	}
	return out
}

// deltaPeer reports whether dissemination toward id may use the v4
// delta vocabulary (the peer decodes it and the oracle knob is off).
func (n *Node) deltaPeer(id string) bool {
	return !n.cfg.LegacyGossip && n.link.DeltaCapable(id)
}

// memberRecordHash digests one member record. Field lengths are mixed
// in so (id, addr) pairs cannot alias across the boundary.
func memberRecordHash(mi broker.MemberInfo) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= uint64(len(s)) | 0x100
		h *= prime
	}
	mix(mi.ID)
	mix(mi.Addr)
	h ^= mi.Incarnation
	h *= prime
	h ^= uint64(mi.State)
	h *= prime
	return h
}

// memberHashLocked returns the anti-entropy digest of the full member
// view: the sum of the record hashes (order-independent, so two nodes
// holding the same records hash identically regardless of how they
// learned them), never zero so the wire can treat zero as absent.
//
// +mustlock:mu
func (n *Node) memberHashLocked() uint64 {
	if n.viewDirty {
		h := memberRecordHash(n.self.wire())
		for _, st := range n.order {
			h += memberRecordHash(st.Member.wire())
		}
		if h == 0 {
			h = 1
		}
		n.viewHash = h
		n.viewDirty = false
	}
	return n.viewHash
}

// enqueueUpdateLocked (re)queues one membership update for
// piggybacked dissemination with a fresh retransmit budget of
// λ·⌈log₂ n⌉ frames, and marks the member list dirty for the
// persistence hook. The latest claim for a member replaces any queued
// one in place.
//
// +mustlock:mu
func (n *Node) enqueueUpdateLocked(mi broker.MemberInfo) {
	n.persistDirty = true
	n.viewDirty = true
	n.routeEpoch.Add(1)
	budget := n.cfg.RetransmitMult * bits.Len(uint(len(n.members)+2))
	if qu := n.updates[mi.ID]; qu != nil {
		qu.info = mi
		qu.remaining = budget
		return
	}
	n.updates[mi.ID] = &queuedUpdate{info: mi, remaining: budget}
	n.updateQueue = append(n.updateQueue, mi.ID)
}

// takeDeltasLocked dequeues up to max pending updates round-robin,
// charging each one frame of its retransmit budget; exhausted updates
// drop out of the queue, surviving ones rotate to the back.
//
// +mustlock:mu
func (n *Node) takeDeltasLocked(max int) []broker.MemberInfo {
	pending := len(n.updateQueue) - n.qHead
	if max <= 0 || pending <= 0 {
		return nil
	}
	take := min(max, pending)
	out := make([]broker.MemberInfo, 0, take)
	for i := 0; i < take; i++ {
		id := n.updateQueue[n.qHead]
		n.qHead++
		qu := n.updates[id]
		if qu == nil {
			continue
		}
		out = append(out, qu.info)
		qu.remaining--
		if qu.remaining > 0 {
			n.updateQueue = append(n.updateQueue, id)
		} else {
			delete(n.updates, id)
		}
	}
	// Compact the consumed prefix once it dominates the queue.
	if n.qHead > 64 && n.qHead*2 >= len(n.updateQueue) {
		n.updateQueue = append([]string(nil), n.updateQueue[n.qHead:]...)
		n.qHead = 0
	}
	n.metrics.DeltaUpdatesSent += uint64(len(out))
	return out
}

// Tick runs one round of the time-driven machinery at the injected
// clock's current instant: direct probes for ProbeFanout random due
// members, indirect probes through relays for the unanswered ones,
// suspect→dead timeouts, gossip fan-out (deltas toward v4 peers, full
// snapshots toward older ones), reconnect attempts for down links,
// and the debounced membership persistence. TCP-attached nodes call
// it from a background ticker; simulator tests call it between clock
// advances (then run the network).
func (n *Node) Tick() {
	now := n.cfg.Clock()
	type sendOp struct {
		to     string
		msg    broker.Message
		digest bool // piggyback the link digest (gossip kinds)
		// probe marks a direct ping: if the transport drops it (the
		// peer's cluster capability is still unknown mid-handshake, or
		// the link just died), the outstanding-ping count rolls back so
		// a frame that never left this process cannot feed suspicion.
		probe *memberState
	}
	type dialOp struct {
		id, addr string
	}
	var sends []sendOp
	var dials []dialOp
	var persistSnap []broker.MemberInfo
	var persistFn func([]broker.MemberInfo)

	n.mu.Lock()
	gossipDue := now.Sub(n.lastGossip) >= n.cfg.GossipEvery
	if gossipDue {
		n.lastGossip = now
	}
	var snapshot []broker.MemberInfo // legacy full-gossip form, built lazily

	// SWIM probe selection: of the linked live members due for a
	// probe, ping at most ProbeFanout random ones this tick. Small
	// clusters (≤ ProbeFanout due members) keep the every-neighbor
	// cadence; large ones pay k probes per tick regardless of size.
	var due []*memberState
	for _, st := range n.linkedOrder {
		if st.linkUp && n.link.ClusterCapable(st.ID) && now.Sub(st.lastPing) >= n.cfg.PingEvery {
			due = append(due, st)
		}
	}
	if k := n.cfg.ProbeFanout; len(due) > k {
		for i := 0; i < k; i++ {
			j := i + n.rng.IntN(len(due)-i)
			due[i], due[j] = due[j], due[i]
		}
		due = due[:k]
	}
	for _, st := range due {
		st.seq++
		st.awaiting++
		st.lastPing = now
		n.metrics.PingsSent++
		ping := broker.Message{Kind: broker.MsgPing, Seq: st.seq}
		if n.deltaPeer(st.ID) {
			ping.Members = n.takeDeltasLocked(n.cfg.MaxDeltasPerFrame)
		}
		sends = append(sends, sendOp{to: st.ID, msg: ping, probe: st})
		// Indirect probe: a previous ping already stands unanswered,
		// so ask r relays to vouch for the member before the suspect
		// threshold trips — SWIM's defense against declaring a member
		// dead over one broken path.
		if st.awaiting > 1 && n.cfg.IndirectRelays > 0 {
			for _, relay := range n.relayTargetsLocked(st.ID) {
				n.metrics.PingReqsSent++
				req := broker.Message{Kind: broker.MsgPingReq, Target: st.ID, Seq: st.seq}
				req.Members = n.takeDeltasLocked(n.cfg.MaxDeltasPerFrame)
				sends = append(sends, sendOp{to: relay.ID, msg: req})
			}
		}
	}

	for _, st := range n.linkedOrder {
		if st.linkUp && n.link.ClusterCapable(st.ID) {
			if !st.synced {
				// Membership push-pull on link establishment: the peer
				// merges our full map and (its own sync push firing
				// symmetrically) sends back its own — the one place
				// full snapshots still travel, which is what lets
				// steady-state dissemination stay delta-only.
				st.synced = true
				if snapshot == nil {
					snapshot = n.wireMembersLocked()
				}
				n.metrics.GossipSent++
				sends = append(sends, sendOp{to: st.ID, msg: broker.Message{Kind: broker.MsgGossip, Members: snapshot}, digest: true})
			}
			if st.State == StateAlive && st.awaiting > n.cfg.SuspectMisses {
				st.State = StateSuspect
				st.suspectSince = now
				n.metrics.Suspects++
				n.enqueueUpdateLocked(st.wire())
			}
			if gossipDue && st.State == StateAlive && st.synced {
				if n.deltaPeer(st.ID) {
					n.metrics.DeltaFramesSent++
					sends = append(sends, sendOp{
						to: st.ID,
						msg: broker.Message{
							Kind:    broker.MsgGossipDelta,
							Members: n.takeDeltasLocked(n.cfg.MaxDeltasPerFrame),
							// The view hash arms anti-entropy: a receiver
							// still hashing differently after the merge
							// pushes its full map back (rate-limited), the
							// completeness backstop for budget-bounded
							// rumors.
							MemberHash: n.memberHashLocked(),
						},
						digest: true,
					})
				} else {
					if snapshot == nil {
						snapshot = n.wireMembersLocked()
					}
					n.metrics.GossipSent++
					sends = append(sends, sendOp{to: st.ID, msg: broker.Message{Kind: broker.MsgGossip, Members: snapshot}, digest: true})
				}
			}
		}
		if st.State == StateSuspect && now.Sub(st.suspectSince) >= n.cfg.DeadAfter {
			st.State = StateDead
			st.lossy = true
			st.linkUp = false
			st.synced = false
			n.metrics.Deaths++
			n.enqueueUpdateLocked(st.wire())
		}
		// Reconnect loop: any down link with a known address is
		// re-dialed on a doubling, jittered backoff.
		if !st.linkUp && !st.dialing && st.Addr != "" &&
			(st.nextDial.IsZero() || !now.Before(st.nextDial)) {
			if st.backoff == 0 {
				st.backoff = n.cfg.ReconnectMin
			} else {
				st.backoff = min(2*st.backoff, n.cfg.ReconnectMax)
			}
			jitter := time.Duration(n.rng.Int64N(int64(st.backoff/2) + 1))
			st.nextDial = now.Add(st.backoff + jitter)
			st.dialing = true
			n.metrics.Dials++
			dials = append(dials, dialOp{st.ID, st.Addr})
		}
	}
	// Expire relay obligations whose target never answered.
	for target, reqs := range n.pendingRelay {
		kept := reqs[:0]
		for _, r := range reqs {
			if now.Before(r.expires) {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			delete(n.pendingRelay, target)
		} else {
			n.pendingRelay[target] = kept
		}
	}
	if n.persistFn != nil && n.persistDirty && now.Sub(n.lastPersist) >= n.cfg.GossipEvery {
		persistSnap = n.wireMembersLocked()
		persistFn = n.persistFn
		n.persistDirty = false
		n.lastPersist = now
	}
	n.mu.Unlock()

	var sentBytes uint64
	var lostProbes []*memberState
	for i := range sends {
		s := &sends[i]
		if s.digest {
			// Piggyback the link digest on gossip: the receiver compares
			// it against what actually arrived over the link and starts
			// a sync round on mismatch — at most one per gossip interval
			// per link, which is the protocol's rate bound.
			if d, ok := n.link.Digest(s.to); ok {
				s.msg.Digest = &d
			}
		}
		if n.link.Send(s.to, s.msg) {
			sentBytes += uint64(controlFrameSize(&s.msg))
		} else if s.probe != nil {
			lostProbes = append(lostProbes, s.probe)
		}
	}
	if sentBytes > 0 || len(lostProbes) > 0 {
		n.mu.Lock()
		n.metrics.ControlBytesSent += sentBytes
		for _, st := range lostProbes {
			// The ping was dropped before reaching the wire (see sendOp):
			// undo its contribution to the miss count. The probe itself
			// retries on the normal cadence, and once the peer's ack
			// finally lands the transport's peer-up hook re-kicks the
			// probe path (markUp resets the count and re-arms the
			// membership push).
			if st.awaiting > 0 {
				st.awaiting--
			}
		}
		n.mu.Unlock()
	}
	for _, d := range dials {
		id := d.id
		n.link.Connect(id, d.addr, func(established bool, err error) { n.dialDone(id, established, err) })
	}
	if persistFn != nil {
		persistFn(persistSnap)
	}
	if r := n.router.Load(); r != nil {
		// Membership moved (or may have): let the router re-evaluate
		// rendezvous ownership and re-announce routed subscriptions
		// whose next hop changed. No-ops until routeEpoch advances.
		r.kick()
	}
}

// relayTargetsLocked picks up to IndirectRelays random linked live
// delta-capable members (excluding the probe target) to carry a
// PING-REQ.
//
// +mustlock:mu
func (n *Node) relayTargetsLocked(target string) []*memberState {
	var cands []*memberState
	for _, st := range n.linkedOrder {
		if st.ID == target || !st.linkUp || st.State != StateAlive {
			continue
		}
		if !n.link.ClusterCapable(st.ID) || !n.deltaPeer(st.ID) {
			continue
		}
		cands = append(cands, st)
	}
	if r := n.cfg.IndirectRelays; len(cands) > r {
		for i := 0; i < r; i++ {
			j := i + n.rng.IntN(len(cands)-i)
			cands[i], cands[j] = cands[j], cands[i]
		}
		cands = cands[:r]
	}
	return cands
}

// dialDone finishes one reconnect attempt.
func (n *Node) dialDone(id string, established bool, err error) {
	if err != nil {
		n.mu.Lock()
		if st := n.members[id]; st != nil {
			st.dialing = false
		}
		n.metrics.DialFailures++
		n.mu.Unlock()
		return
	}
	if !established {
		// A live link already exists (a concurrent dial-back won the
		// race, or the detector gave up on a connection that never
		// actually broke). The dial made no contact with the peer, so
		// it must NOT count as a recovery — forcing alive here would
		// let a hung-but-connected peer flap dead→alive forever.
		// Resume probing over the existing link instead: a pong marks
		// the member alive (observe), and if the connection is truly
		// dead its writer will fail and reopen the reconnect path.
		n.mu.Lock()
		if st := n.members[id]; st != nil {
			st.dialing = false
			st.linkUp = true
			st.backoff = 0
			st.nextDial = time.Time{}
			n.routeEpoch.Add(1)
		}
		n.mu.Unlock()
		return
	}
	n.markUp(id)
}

// PeerUp is the transport's link-established hook (outbound connect
// completed). It is also the dial-success path, so both converge on
// the same recovery/announce logic.
func (n *Node) PeerUp(id string) { n.markUp(id) }

// PeerDown is the transport's link-lost hook: the member turns
// suspect immediately (faster than waiting out the ping misses) and
// is flagged lossy so the next successful contact re-announces roots.
//
// While a re-dial is already in flight the suspect escalation is
// skipped (the link-down and lossy flags still apply): the losing
// connection of a dial race reports its death AFTER the replacement
// link is being established, and escalating then would bump the
// member's incarnation on every such race (suspect → markUp
// refutation), turning connection churn into gossip churn. The
// regression test pins the interleaving.
func (n *Node) PeerDown(id string) {
	now := n.cfg.Clock()
	n.mu.Lock()
	st := n.members[id]
	if st != nil {
		st.linkUp = false
		st.lossy = true
		st.synced = false
		n.routeEpoch.Add(1)
		if st.State == StateAlive && !st.dialing {
			st.State = StateSuspect
			st.suspectSince = now
			n.metrics.Suspects++
			n.cfg.Events.Record("suspect", n.self.ID, st.ID+" link down")
			n.enqueueUpdateLocked(st.wire())
		}
	}
	n.mu.Unlock()
}

// markUp records that the OUTBOUND link to id works again (a dial
// completed, or the transport's link-up hook fired) and, when the
// contact is a RECOVERY (the member was dead, or frames toward it may
// have been lost), runs the healing protocol: the local coverage
// roots for that peer go out as one SUBBATCH, so the peer relearns
// every forwarded subscription it may have missed — duplicates are
// dropped on its side, gaps are filled, and routing state converges
// again. Every down→up transition also pushes a full membership
// snapshot over the fresh link (both sides do, so a new or recovered
// peer and the cluster exchange complete member maps once), which is
// what lets steady-state dissemination stay delta-only.
//
// Only outbound-path events come here. Inbound frames (observe) prove
// the peer can reach us, not that we can reach it, so they neither
// set linkUp nor clear lossy — otherwise a half-broken link would
// silence the reconnect loop and the re-announcement would be queued
// onto a dead connection.
func (n *Node) markUp(id string) {
	if id == n.link.Self() {
		return
	}
	n.mu.Lock()
	st := n.members[id]
	if st == nil {
		// A peer we were not configured with connected to us (its side
		// was configured, or mesh gossip got there first). Track it;
		// the address arrives by gossip.
		st = &memberState{Member: Member{ID: id}}
		n.trackLocked(st)
		n.linkLocked(st)
	}
	wasDown := !st.linkUp
	st.dialing = false
	st.linkUp = true
	st.awaiting = 0
	st.backoff = 0
	st.nextDial = time.Time{}
	recovered := st.lossy || st.State == StateDead
	if recovered {
		n.cfg.Events.Record("recover", n.self.ID, st.ID)
	}
	if st.State != StateAlive {
		// Observer-assisted refutation: propagate the recovery at a
		// fresh incarnation so gossip overrides the standing suspect
		// or dead rumor (which would otherwise win every same-
		// incarnation merge by severity).
		st.Incarnation++
	}
	stateChanged := st.State != StateAlive
	st.State = StateAlive
	st.lossy = false
	if recovered {
		n.metrics.Recoveries++
	}
	if stateChanged || wasDown {
		n.enqueueUpdateLocked(st.wire())
	}
	if wasDown || recovered {
		// Arm the membership push for the fresh link: the next Tick
		// sends the full member map once the peer is known
		// cluster-capable (see memberState.synced).
		st.synced = false
	}
	n.mu.Unlock()
	// Transports that synchronize roots on connect already healed the
	// link before this hook fired; announcing again would only send a
	// duplicate batch.
	if n.link.SyncOnConnect() {
		return
	}
	// Announce on every down→up transition, not only on tracked
	// losses: while a link is down the broker admits-and-drops
	// forwards toward it (a freshly restarted neighbor's other links
	// race its own heal traffic this way), and the coverage table is
	// always updated before a forward can be dropped, so the root set
	// read here covers every gap. Redundant announcements cost one
	// SUBBATCH of duplicates, which the receiver drops.
	if (recovered || wasDown) && !n.announce(id) {
		// The roots did not go out; keep the member marked lossy so
		// the next successful contact retries the heal.
		n.mu.Lock()
		if st := n.members[id]; st != nil {
			st.lossy = true
		}
		n.mu.Unlock()
	}
}

// announce sends the coverage roots for peer as one SUBBATCH,
// reporting whether they went out (an empty root set is a trivial
// success).
func (n *Node) announce(id string) bool {
	roots := n.link.Roots(id)
	if len(roots) == 0 {
		return true
	}
	if !n.link.Send(id, broker.Message{Kind: broker.MsgSubscribeBatch, Subs: roots}) {
		return false
	}
	n.mu.Lock()
	n.metrics.ReannounceBatches++
	n.metrics.ReannouncedSubs += uint64(len(roots))
	n.mu.Unlock()
	n.cfg.Events.Recordf("reannounce", n.link.Self(), "%s roots=%d", id, len(roots))
	return true
}

// HandleControl is the broker.ControlHandler: it dispatches inbound
// ping/pong/gossip/ping-req/gossip-delta frames and returns the
// replies (pong, relay probes, indirect acks, refutation gossip) for
// the transport to deliver. Membership deltas piggybacked on any
// control kind are merged exactly like gossip.
func (n *Node) HandleControl(from string, msg broker.Message) []broker.Outbound {
	now := n.cfg.Clock()
	switch msg.Kind {
	case broker.MsgPing:
		var outs []broker.Outbound
		if len(msg.Members) > 0 {
			outs, _ = n.mergeGossip(from, msg.Members, now)
		} else {
			n.observe(from, now, false)
		}
		pong := broker.Message{Kind: broker.MsgPong, Seq: msg.Seq}
		n.mu.Lock()
		if n.deltaPeer(from) {
			pong.Members = n.takeDeltasLocked(n.cfg.MaxDeltasPerFrame)
		}
		n.metrics.ControlBytesSent += uint64(controlFrameSize(&pong))
		n.mu.Unlock()
		return append(outs, broker.Outbound{To: from, Msg: pong})
	case broker.MsgPong:
		n.observe(from, now, true)
		var outs []broker.Outbound
		if len(msg.Members) > 0 {
			outs, _ = n.mergeGossip(from, msg.Members, now)
		}
		return append(outs, n.relayAcks(from)...)
	case broker.MsgPingReq:
		if msg.Ack {
			var outs []broker.Outbound
			if len(msg.Members) > 0 {
				outs, _ = n.mergeGossip(from, msg.Members, now)
			} else {
				n.observe(from, now, false)
			}
			n.indirectObserve(msg.Target)
			return outs
		}
		return n.relayProbe(from, msg, now)
	case broker.MsgGossip, broker.MsgGossipDelta:
		outs, learned := n.mergeGossip(from, msg.Members, now)
		if msg.Kind == broker.MsgGossipDelta && msg.MemberHash != 0 && !learned {
			if out, ok := n.antiEntropy(from, msg.MemberHash, now); ok {
				outs = append(outs, out)
			}
		}
		return outs
	default:
		return nil
	}
}

// relayProbe handles an origin's PING-REQ: if this node holds a live
// direct link to the target it pings the target itself and remembers
// to ack the origin when the pong arrives. A relay without direct
// linkage refuses silently — it cannot vouch over links it does not
// have, which is exactly what keeps a partitioned member from being
// kept alive through relays that only know it by rumor.
func (n *Node) relayProbe(from string, msg broker.Message, now time.Time) []broker.Outbound {
	var outs []broker.Outbound
	if len(msg.Members) > 0 {
		outs, _ = n.mergeGossip(from, msg.Members, now)
	} else {
		n.observe(from, now, false)
	}
	if msg.Target == n.link.Self() {
		// We ARE the target: the origin lost its direct path to us and
		// is probing through a relay that got confused — answer
		// directly, we are evidently alive.
		ack := broker.Message{Kind: broker.MsgPingReq, Ack: true, Target: msg.Target, Seq: msg.Seq}
		n.mu.Lock()
		n.metrics.ControlBytesSent += uint64(controlFrameSize(&ack))
		n.mu.Unlock()
		return append(outs, broker.Outbound{To: from, Msg: ack})
	}
	n.mu.Lock()
	st := n.members[msg.Target]
	if st == nil || !st.linked || !st.linkUp || !n.link.ClusterCapable(msg.Target) {
		n.mu.Unlock()
		return outs
	}
	st.seq++
	st.awaiting++
	st.lastPing = now
	n.metrics.PingsSent++
	n.metrics.PingReqsRelayed++
	n.pendingRelay[msg.Target] = append(n.pendingRelay[msg.Target],
		relayReq{origin: from, seq: msg.Seq, expires: now.Add(2 * n.cfg.PingEvery)})
	ping := broker.Message{Kind: broker.MsgPing, Seq: st.seq}
	if n.deltaPeer(msg.Target) {
		ping.Members = n.takeDeltasLocked(n.cfg.MaxDeltasPerFrame)
	}
	n.metrics.ControlBytesSent += uint64(controlFrameSize(&ping))
	n.mu.Unlock()
	return append(outs, broker.Outbound{To: msg.Target, Msg: ping})
}

// relayAcks answers every indirect-probe origin waiting on a pong
// from this member.
func (n *Node) relayAcks(target string) []broker.Outbound {
	n.mu.Lock()
	reqs := n.pendingRelay[target]
	delete(n.pendingRelay, target)
	var outs []broker.Outbound
	for _, r := range reqs {
		ack := broker.Message{Kind: broker.MsgPingReq, Ack: true, Target: target, Seq: r.seq}
		if n.deltaPeer(r.origin) {
			ack.Members = n.takeDeltasLocked(n.cfg.MaxDeltasPerFrame)
		}
		n.metrics.ControlBytesSent += uint64(controlFrameSize(&ack))
		outs = append(outs, broker.Outbound{To: r.origin, Msg: ack})
	}
	n.mu.Unlock()
	return outs
}

// indirectObserve processes a relay's vouch for target: the member
// answered SOMEONE's ping, so it is alive and the outstanding-probe
// count resets — but nothing is learned about our own direct link, so
// linkUp and lossy stay untouched and the reconnect loop keeps
// working on the broken path.
func (n *Node) indirectObserve(target string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.members[target]
	if st == nil {
		return
	}
	n.metrics.IndirectAcks++
	st.awaiting = 0
	if st.State != StateAlive {
		st.Incarnation++
		st.State = StateAlive
		n.enqueueUpdateLocked(st.wire())
	}
}

// observe processes direct INBOUND evidence of life from a member
// (any control frame it sent us). Inbound evidence marks the member
// alive — the process is clearly running — but deliberately leaves
// linkUp and lossy alone: whether WE can reach IT is decided by the
// outbound path (pongs to our own pings, dial results, link hooks),
// and the healing re-announcement must ride a restored outbound link,
// not an inference from inbound traffic.
func (n *Node) observe(from string, now time.Time, pong bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.members[from]
	if st == nil {
		st = &memberState{Member: Member{ID: from}}
		n.trackLocked(st)
		n.linkLocked(st)
		n.enqueueUpdateLocked(st.wire())
	}
	if pong {
		n.metrics.PongsReceived++
		// Only a pong proves the round trip, so only a pong clears the
		// outstanding-ping count.
		st.awaiting = 0
	}
	if st.State != StateAlive {
		// Observer-assisted refutation, as in markUp.
		st.Incarnation++
		st.State = StateAlive
		n.enqueueUpdateLocked(st.wire())
	}
	st.State = StateAlive
}

// mergeGossip folds a remote member list into the local one under the
// (incarnation, severity) order, treats the sender itself as directly
// observed, learns new members (linking them in mesh mode), requeues
// every adopted update for further dissemination, and refutes rumors
// of the local node's own death by bumping its incarnation and
// gossiping straight back. The second return reports whether the
// merge taught this node ANYTHING — the anti-entropy gate: a frame
// that carried only known information while the sender's view hash
// still differs means some rumor starved before reaching one side.
func (n *Node) mergeGossip(from string, infos []broker.MemberInfo, now time.Time) ([]broker.Outbound, bool) {
	n.observe(from, now, false)

	var refute, changed bool
	n.mu.Lock()
	for _, mi := range infos {
		m := memberFromWire(mi)
		if m.ID == n.self.ID {
			if m.State != StateAlive && m.Incarnation >= n.self.Incarnation {
				n.self.Incarnation = m.Incarnation + 1
				refute = true
				changed = true
				n.enqueueUpdateLocked(n.self.wire())
			} else if m.Incarnation > n.self.Incarnation {
				n.self.Incarnation = m.Incarnation
				changed = true
				n.enqueueUpdateLocked(n.self.wire())
			}
			continue
		}
		if m.ID == from {
			// Direct contact already processed the sender; its
			// self-claim still teaches us its incarnation and — for
			// members first met over an inbound connection — its
			// dialable address, which mesh discovery passes on.
			if st := n.members[from]; st != nil {
				senderChanged := false
				if st.Addr == "" && m.Addr != "" {
					st.Addr = m.Addr
					senderChanged = true
				}
				if m.Incarnation > st.Incarnation {
					st.Incarnation = m.Incarnation
					senderChanged = true
				}
				if senderChanged {
					changed = true
					// Requeue so the address (or incarnation) just
					// learned replaces any address-less update still in
					// the delta queue — deltas snapshot the record at
					// enqueue time, and an address-less rumor cannot
					// seed mesh dials on the receiving side.
					n.enqueueUpdateLocked(st.wire())
				}
			}
			continue
		}
		st := n.members[m.ID]
		if st == nil {
			st = &memberState{Member: m}
			if st.State == StateSuspect || st.State == StateDead {
				st.suspectSince = now
				st.lossy = true
			}
			n.trackLocked(st)
			if n.cfg.Mesh {
				n.linkLocked(st)
			}
			n.metrics.GossipMerged++
			changed = true
			n.enqueueUpdateLocked(st.wire())
			continue
		}
		if st.Addr == "" && m.Addr != "" {
			st.Addr = m.Addr
			changed = true
			n.enqueueUpdateLocked(st.wire())
		}
		if n.cfg.Mesh {
			n.linkLocked(st)
		}
		// Fresh direct evidence outranks rumor: a member answering our
		// own pings is not dead, whatever the gossip says — it will
		// refute the rumor itself.
		if st.linkUp && st.awaiting == 0 && m.State != StateAlive {
			continue
		}
		if supersedes(m, st.Member) {
			if m.State == StateDead && st.State != StateDead {
				st.lossy = true
				st.linkUp = false
			}
			if m.State == StateSuspect && st.State == StateAlive {
				st.suspectSince = now
			}
			st.Incarnation = m.Incarnation
			st.State = m.State
			n.metrics.GossipMerged++
			changed = true
			n.enqueueUpdateLocked(st.wire())
		}
	}
	var snapshot []broker.MemberInfo
	if refute {
		n.metrics.GossipSent++
		snapshot = n.wireMembersLocked()
		n.metrics.ControlBytesSent += uint64(controlFrameSize(&broker.Message{Kind: broker.MsgGossip, Members: snapshot}))
	}
	n.mu.Unlock()

	if !refute {
		return nil, changed
	}
	return []broker.Outbound{{To: from, Msg: broker.Message{Kind: broker.MsgGossip, Members: snapshot}}}, changed
}

// antiEntropy answers a gossip-delta frame whose view hash does not
// match ours even though its deltas taught us nothing: some rumor
// exhausted its retransmit budget before reaching one of the two
// sides, so push our full map back (at most once per GossipEvery per
// peer). The peer's own delta frames arm the symmetric push toward
// us, which is what makes the repair converge regardless of which
// side is missing what.
func (n *Node) antiEntropy(from string, remoteHash uint64, now time.Time) (broker.Outbound, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.memberHashLocked() == remoteHash {
		return broker.Outbound{}, false
	}
	st := n.members[from]
	if st == nil || now.Sub(st.lastSyncReply) < n.cfg.GossipEvery {
		return broker.Outbound{}, false
	}
	st.lastSyncReply = now
	n.metrics.MemberSyncs++
	n.metrics.GossipSent++
	msg := broker.Message{Kind: broker.MsgGossip, Members: n.wireMembersLocked()}
	n.metrics.ControlBytesSent += uint64(controlFrameSize(&msg))
	return broker.Outbound{To: from, Msg: msg}, true
}

// run is the TCP-attached background loop: Tick on a real ticker.
func (n *Node) run() {
	defer n.wg.Done()
	//brokervet:allow clockcheck real-TCP attach path: the ticker only paces Tick calls; all time the logic sees still flows through cfg.Clock
	t := time.NewTicker(n.cfg.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.Tick()
		}
	}
}

// Close stops the background ticker (if any). It does not shut down
// the underlying broker; membership can be detached and re-attached
// around a broker's lifetime.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// String renders the member list compactly (diagnostics, examples).
func (n *Node) String() string {
	ms := n.Members()
	out := ""
	for i, m := range ms {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%s@%d", m.ID, m.State, m.Incarnation)
	}
	return out
}

// ---------------------------------------------------------------------------
// Wire-size estimation: exact arithmetic mirror of the v4 binary
// encoding of the control kinds, so traffic accounting costs no
// second encode pass. Kept in lockstep with pubsub's codec (the codec
// tests cross-check the sizes).

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func wireStringLen(s string) int { return uvarintLen(uint64(len(s))) + len(s) }

func wireMembersLen(ms []broker.MemberInfo) int {
	sz := uvarintLen(uint64(len(ms)))
	for _, m := range ms {
		sz += wireStringLen(m.ID) + wireStringLen(m.Addr) + uvarintLen(m.Incarnation) + 1
	}
	return sz
}

// controlFrameSize estimates the on-wire bytes of a control frame
// under the v4 binary codec: 6-byte header, kind byte, payload.
func controlFrameSize(msg *broker.Message) int {
	const hdr = 7
	switch msg.Kind {
	case broker.MsgPing, broker.MsgPong:
		sz := hdr + uvarintLen(msg.Seq)
		if len(msg.Members) > 0 {
			sz += wireMembersLen(msg.Members)
		}
		return sz
	case broker.MsgPingReq:
		return hdr + 1 + wireStringLen(msg.Target) + uvarintLen(msg.Seq) + wireMembersLen(msg.Members)
	case broker.MsgGossip, broker.MsgGossipDelta:
		sz := hdr + wireMembersLen(msg.Members)
		if msg.Kind == broker.MsgGossipDelta {
			sz += 8 // fixed member-view hash
		}
		if msg.Digest != nil {
			sz += 1 + uvarintLen(uint64(msg.Digest.Count)) + 8
		}
		return sz
	default:
		return hdr
	}
}
