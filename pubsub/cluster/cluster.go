package cluster

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"probsum/internal/broker"
)

// Link is the cluster node's view of its broker's overlay links — the
// only thing membership needs from a transport. pubsub TCP brokers and
// simulator brokers both satisfy it (see Attach and NewSimNode).
type Link interface {
	// Self returns the local broker's identifier.
	Self() string
	// Send queues one protocol message toward a peer, best-effort,
	// under the transport's wire-vocabulary negotiation. It reports
	// whether a live (and, for control kinds, cluster-capable) link
	// existed.
	Send(peer string, msg broker.Message) bool
	// Connect (re)establishes the link to a peer and reports the
	// result through done: established says whether THIS attempt
	// created the link (false with a nil error when a live link
	// already existed — which proves nothing about the peer, since
	// that connection may be stalled). The TCP implementation dials on
	// its own goroutine (done runs there); the simulator one answers
	// inline, which keeps simulated runs deterministic.
	Connect(peer, addr string, done func(established bool, err error))
	// Roots exports the coverage roots to re-announce to a recovered
	// peer: the active set of the local coverage table for that peer.
	Roots(peer string) []broker.BatchSub
	// ClusterCapable reports whether the peer advertised the
	// membership protocol — peers that did not are never pinged (their
	// links are still reconnected on loss).
	ClusterCapable(peer string) bool
	// SyncOnConnect reports whether the transport itself synchronizes
	// the coverage roots over a freshly connected link (the TCP
	// transport sends them as one SUBBATCH after every successful peer
	// dial). When it does, the node does not re-announce on recovery —
	// the link layer already did; when it does not (the simulator,
	// whose "dials" are logical), the node sends the announcement.
	SyncOnConnect() bool
	// Digest returns the broker's sender-side subscription digest for
	// the link to peer, false when the link has no digest to offer or
	// the peer cannot decode one (pre-v3 wire vocabulary). Gossip
	// toward the peer piggybacks it, which is what arms the
	// anti-entropy reconciliation.
	Digest(peer string) (broker.LinkDigest, bool)
}

// Config tunes a membership node. Zero values select the defaults
// noted on each field.
type Config struct {
	// PingEvery is the failure-detector probe interval (500ms).
	PingEvery time.Duration
	// SuspectMisses is how many unanswered pings move an alive member
	// to suspect (2).
	SuspectMisses int
	// DeadAfter is how long a member stays suspect before it is
	// declared dead (4 × PingEvery).
	DeadAfter time.Duration
	// GossipEvery is the anti-entropy interval: the full member list
	// goes to every live linked peer this often (2 × PingEvery).
	GossipEvery time.Duration
	// ReconnectMin / ReconnectMax bound the re-dial backoff for down
	// links: attempts double from Min to Max with seeded jitter
	// (PingEvery/2 and 16 × ReconnectMin).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// TickEvery is the background tick period of TCP-attached nodes
	// (PingEvery / 4); simulator nodes are ticked manually instead.
	TickEvery time.Duration
	// Incarnation is the node's own starting incarnation (1).
	Incarnation uint64
	// Seed feeds the backoff-jitter stream, mixed with the node ID so
	// cluster members never thunder in lockstep (1).
	Seed uint64
	// Clock supplies the node's time (time.Now). Simulator tests
	// inject a simnet.Clock for fully deterministic schedules.
	Clock func() time.Time
	// Mesh links every member discovered through gossip (seed-node
	// operation: the overlay converges to a full mesh). Without it
	// only explicitly added peers are linked (topology operation).
	Mesh bool
}

func (c Config) withDefaults() Config {
	if c.PingEvery <= 0 {
		c.PingEvery = 500 * time.Millisecond
	}
	if c.SuspectMisses <= 0 {
		c.SuspectMisses = 2
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 4 * c.PingEvery
	}
	if c.GossipEvery <= 0 {
		c.GossipEvery = 2 * c.PingEvery
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = c.PingEvery / 2
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 16 * c.ReconnectMin
	}
	if c.TickEvery <= 0 {
		c.TickEvery = max(c.PingEvery/4, time.Millisecond)
	}
	if c.Incarnation == 0 {
		c.Incarnation = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == nil {
		//brokervet:allow clockcheck this IS the clock injection point: the default for production wiring, overridden by simnet in deterministic tests
		c.Clock = time.Now
	}
	return c
}

// NodeMetrics counts a membership node's activity.
type NodeMetrics struct {
	PingsSent     uint64
	PongsReceived uint64
	// Suspects / Deaths / Recoveries count state transitions of
	// tracked members as seen by this node.
	Suspects   uint64
	Deaths     uint64
	Recoveries uint64
	// ReannounceBatches counts root re-announcements sent (one
	// SUBBATCH each); ReannouncedSubs the subscriptions they carried.
	ReannounceBatches uint64
	ReannouncedSubs   uint64
	GossipSent        uint64
	GossipMerged      uint64 // remote claims adopted (or members learned)
	Dials             uint64
	DialFailures      uint64
}

// Node is the membership side of one broker: member list, failure
// detector, gossip, and the reconnect/heal loop. All methods are safe
// for concurrent use; time advances only through Tick (which TCP
// nodes run on a background ticker and simulator tests call
// manually).
type Node struct {
	link Link
	cfg  Config
	// +guarded_by:mu
	rng *rand.Rand // jitter stream

	mu sync.Mutex
	// +guarded_by:mu
	self Member
	// +guarded_by:mu
	members map[string]*memberState
	// +guarded_by:mu
	lastGossip time.Time
	// +guarded_by:mu
	metrics NodeMetrics

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewNode builds a membership node around a link. The node is
// passive until Tick is called (or a background ticker is started by
// Attach); self's state is forced alive and its incarnation defaults
// from the config when zero.
func NewNode(self Member, link Link, cfg Config) *Node {
	cfg = cfg.withDefaults()
	self.State = StateAlive
	if self.Incarnation == 0 {
		self.Incarnation = cfg.Incarnation
	}
	return &Node{
		link:    link,
		cfg:     cfg,
		rng:     rand.New(rand.NewPCG(cfg.Seed^fnv1a(self.ID), fnv1a(self.ID)|1)),
		self:    self,
		members: make(map[string]*memberState),
		stop:    make(chan struct{}),
	}
}

// fnv1a hashes a string into a 64-bit seed component.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// AddMember registers a member to track. Linked members get the full
// treatment — the reconnect loop establishes and maintains their
// overlay link, the failure detector pings them — while unlinked ones
// are only carried in gossip. Members start suspect-until-contacted:
// the first successful connect (or inbound frame) makes them alive,
// and a member that never answers goes dead on the normal timeout.
// Adding an already-tracked member only widens its linkage and fills
// a missing address.
func (n *Node) AddMember(m Member, linked bool) {
	if m.ID == n.link.Self() {
		return
	}
	now := n.cfg.Clock()
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.members[m.ID]
	if st == nil {
		m.State = StateSuspect
		st = &memberState{Member: m, suspectSince: now}
		n.members[m.ID] = st
	} else if st.Addr == "" && m.Addr != "" {
		st.Addr = m.Addr
	}
	st.linked = st.linked || linked
}

// Members returns the current member list — the local node first,
// then the tracked members sorted by ID.
func (n *Node) Members() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members)+1)
	out = append(out, n.self)
	for _, id := range n.sortedIDsLocked() {
		out = append(out, n.members[id].Member)
	}
	return out
}

// Member returns the tracked record for id (the local node included).
func (n *Node) Member(id string) (Member, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if id == n.self.ID {
		return n.self, true
	}
	st, ok := n.members[id]
	if !ok {
		return Member{}, false
	}
	return st.Member, true
}

// Metrics returns a snapshot of the activity counters.
func (n *Node) Metrics() NodeMetrics {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.metrics
}

// sortedIDsLocked lists tracked member IDs in deterministic order.
//
// +mustlock:mu
func (n *Node) sortedIDsLocked() []string {
	ids := make([]string, 0, len(n.members))
	for id := range n.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// wireMembersLocked snapshots the member list (self first) in gossip
// form.
//
// +mustlock:mu
func (n *Node) wireMembersLocked() []broker.MemberInfo {
	out := make([]broker.MemberInfo, 0, len(n.members)+1)
	out = append(out, n.self.wire())
	for _, id := range n.sortedIDsLocked() {
		out = append(out, n.members[id].Member.wire())
	}
	return out
}

// Tick runs one round of the time-driven machinery at the injected
// clock's current instant: pings due on live links, suspect→dead
// timeouts, gossip fan-out, and reconnect attempts for down links.
// TCP-attached nodes call it from a background ticker; simulator
// tests call it between clock advances (then run the network).
func (n *Node) Tick() {
	now := n.cfg.Clock()
	type sendOp struct {
		to  string
		msg broker.Message
	}
	type dialOp struct {
		id, addr string
	}
	var sends []sendOp
	var dials []dialOp

	n.mu.Lock()
	gossipDue := now.Sub(n.lastGossip) >= n.cfg.GossipEvery
	var snapshot []broker.MemberInfo
	if gossipDue {
		snapshot = n.wireMembersLocked()
		n.lastGossip = now
	}
	for _, id := range n.sortedIDsLocked() {
		st := n.members[id]
		if !st.linked {
			continue
		}
		if st.linkUp && n.link.ClusterCapable(id) {
			// Failure detector: probe, then judge the silence.
			if now.Sub(st.lastPing) >= n.cfg.PingEvery {
				st.seq++
				st.awaiting++
				st.lastPing = now
				n.metrics.PingsSent++
				sends = append(sends, sendOp{id, broker.Message{Kind: broker.MsgPing, Seq: st.seq}})
			}
			if st.State == StateAlive && st.awaiting > n.cfg.SuspectMisses {
				st.State = StateSuspect
				st.suspectSince = now
				n.metrics.Suspects++
			}
			if gossipDue && st.State == StateAlive {
				n.metrics.GossipSent++
				sends = append(sends, sendOp{id, broker.Message{Kind: broker.MsgGossip, Members: snapshot}})
			}
		}
		if st.State == StateSuspect && now.Sub(st.suspectSince) >= n.cfg.DeadAfter {
			st.State = StateDead
			st.lossy = true
			st.linkUp = false
			n.metrics.Deaths++
		}
		// Reconnect loop: any down link with a known address is
		// re-dialed on a doubling, jittered backoff.
		if !st.linkUp && !st.dialing && st.Addr != "" &&
			(st.nextDial.IsZero() || !now.Before(st.nextDial)) {
			if st.backoff == 0 {
				st.backoff = n.cfg.ReconnectMin
			} else {
				st.backoff = min(2*st.backoff, n.cfg.ReconnectMax)
			}
			jitter := time.Duration(n.rng.Int64N(int64(st.backoff/2) + 1))
			st.nextDial = now.Add(st.backoff + jitter)
			st.dialing = true
			n.metrics.Dials++
			dials = append(dials, dialOp{id, st.Addr})
		}
	}
	n.mu.Unlock()

	for _, s := range sends {
		if s.msg.Kind == broker.MsgGossip {
			// Piggyback the link digest on gossip: the receiver compares
			// it against what actually arrived over the link and starts
			// a sync round on mismatch — at most one per gossip interval
			// per link, which is the protocol's rate bound.
			if d, ok := n.link.Digest(s.to); ok {
				s.msg.Digest = &d
			}
		}
		n.link.Send(s.to, s.msg)
	}
	for _, d := range dials {
		id := d.id
		n.link.Connect(id, d.addr, func(established bool, err error) { n.dialDone(id, established, err) })
	}
}

// dialDone finishes one reconnect attempt.
func (n *Node) dialDone(id string, established bool, err error) {
	if err != nil {
		n.mu.Lock()
		if st := n.members[id]; st != nil {
			st.dialing = false
		}
		n.metrics.DialFailures++
		n.mu.Unlock()
		return
	}
	if !established {
		// A live link already exists (a concurrent dial-back won the
		// race, or the detector gave up on a connection that never
		// actually broke). The dial made no contact with the peer, so
		// it must NOT count as a recovery — forcing alive here would
		// let a hung-but-connected peer flap dead→alive forever.
		// Resume probing over the existing link instead: a pong marks
		// the member alive (observe), and if the connection is truly
		// dead its writer will fail and reopen the reconnect path.
		n.mu.Lock()
		if st := n.members[id]; st != nil {
			st.dialing = false
			st.linkUp = true
			st.backoff = 0
			st.nextDial = time.Time{}
		}
		n.mu.Unlock()
		return
	}
	n.markUp(id)
}

// PeerUp is the transport's link-established hook (outbound connect
// completed). It is also the dial-success path, so both converge on
// the same recovery/announce logic.
func (n *Node) PeerUp(id string) { n.markUp(id) }

// PeerDown is the transport's link-lost hook: the member turns
// suspect immediately (faster than waiting out the ping misses) and
// is flagged lossy so the next successful contact re-announces roots.
func (n *Node) PeerDown(id string) {
	now := n.cfg.Clock()
	n.mu.Lock()
	st := n.members[id]
	if st != nil {
		st.linkUp = false
		st.lossy = true
		if st.State == StateAlive {
			st.State = StateSuspect
			st.suspectSince = now
			n.metrics.Suspects++
		}
	}
	n.mu.Unlock()
}

// markUp records that the OUTBOUND link to id works again (a dial
// completed, or the transport's link-up hook fired) and, when the
// contact is a RECOVERY (the member was dead, or frames toward it may
// have been lost), runs the healing protocol: the local coverage
// roots for that peer go out as one SUBBATCH, so the peer relearns
// every forwarded subscription it may have missed — duplicates are
// dropped on its side, gaps are filled, and routing state converges
// again.
//
// Only outbound-path events come here. Inbound frames (observe) prove
// the peer can reach us, not that we can reach it, so they neither
// set linkUp nor clear lossy — otherwise a half-broken link would
// silence the reconnect loop and the re-announcement would be queued
// onto a dead connection.
func (n *Node) markUp(id string) {
	if id == n.link.Self() {
		return
	}
	n.mu.Lock()
	st := n.members[id]
	if st == nil {
		// A peer we were not configured with connected to us (its side
		// was configured, or mesh gossip got there first). Track it;
		// the address arrives by gossip.
		st = &memberState{Member: Member{ID: id}, linked: true}
		n.members[id] = st
	}
	wasDown := !st.linkUp
	st.dialing = false
	st.linkUp = true
	st.awaiting = 0
	st.backoff = 0
	st.nextDial = time.Time{}
	recovered := st.lossy || st.State == StateDead
	if st.State != StateAlive {
		// Observer-assisted refutation: propagate the recovery at a
		// fresh incarnation so gossip overrides the standing suspect
		// or dead rumor (which would otherwise win every same-
		// incarnation merge by severity).
		st.Incarnation++
	}
	st.State = StateAlive
	st.lossy = false
	if recovered {
		n.metrics.Recoveries++
	}
	n.mu.Unlock()
	// Transports that synchronize roots on connect already healed the
	// link before this hook fired; announcing again would only send a
	// duplicate batch.
	if n.link.SyncOnConnect() {
		return
	}
	// Announce on every down→up transition, not only on tracked
	// losses: while a link is down the broker admits-and-drops
	// forwards toward it (a freshly restarted neighbor's other links
	// race its own heal traffic this way), and the coverage table is
	// always updated before a forward can be dropped, so the root set
	// read here covers every gap. Redundant announcements cost one
	// SUBBATCH of duplicates, which the receiver drops.
	if (recovered || wasDown) && !n.announce(id) {
		// The roots did not go out; keep the member marked lossy so
		// the next successful contact retries the heal.
		n.mu.Lock()
		if st := n.members[id]; st != nil {
			st.lossy = true
		}
		n.mu.Unlock()
	}
}

// announce sends the coverage roots for peer as one SUBBATCH,
// reporting whether they went out (an empty root set is a trivial
// success).
func (n *Node) announce(id string) bool {
	roots := n.link.Roots(id)
	if len(roots) == 0 {
		return true
	}
	if !n.link.Send(id, broker.Message{Kind: broker.MsgSubscribeBatch, Subs: roots}) {
		return false
	}
	n.mu.Lock()
	n.metrics.ReannounceBatches++
	n.metrics.ReannouncedSubs += uint64(len(roots))
	n.mu.Unlock()
	return true
}

// HandleControl is the broker.ControlHandler: it dispatches inbound
// ping/pong/gossip frames and returns the replies (pong, refutation
// gossip, recovery re-announcements) for the transport to deliver.
func (n *Node) HandleControl(from string, msg broker.Message) []broker.Outbound {
	now := n.cfg.Clock()
	switch msg.Kind {
	case broker.MsgPing:
		n.observe(from, now, false)
		return []broker.Outbound{{To: from, Msg: broker.Message{Kind: broker.MsgPong, Seq: msg.Seq}}}
	case broker.MsgPong:
		n.observe(from, now, true)
		return nil
	case broker.MsgGossip:
		return n.mergeGossip(from, msg.Members, now)
	default:
		return nil
	}
}

// observe processes direct INBOUND evidence of life from a member
// (any control frame it sent us). Inbound evidence marks the member
// alive — the process is clearly running — but deliberately leaves
// linkUp and lossy alone: whether WE can reach IT is decided by the
// outbound path (pongs to our own pings, dial results, link hooks),
// and the healing re-announcement must ride a restored outbound link,
// not an inference from inbound traffic.
func (n *Node) observe(from string, now time.Time, pong bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.members[from]
	if st == nil {
		st = &memberState{Member: Member{ID: from}, linked: true}
		n.members[from] = st
	}
	if pong {
		n.metrics.PongsReceived++
		// Only a pong proves the round trip, so only a pong clears the
		// outstanding-ping count.
		st.awaiting = 0
	}
	if st.State != StateAlive {
		// Observer-assisted refutation, as in markUp.
		st.Incarnation++
	}
	st.State = StateAlive
}

// mergeGossip folds a remote member list into the local one under the
// (incarnation, severity) order, treats the sender itself as directly
// observed, learns new members (linking them in mesh mode), and
// refutes rumors of the local node's own death by bumping its
// incarnation and gossiping straight back.
func (n *Node) mergeGossip(from string, infos []broker.MemberInfo, now time.Time) []broker.Outbound {
	n.observe(from, now, false)

	var refute bool
	n.mu.Lock()
	for _, mi := range infos {
		m := memberFromWire(mi)
		if m.ID == n.self.ID {
			if m.State != StateAlive && m.Incarnation >= n.self.Incarnation {
				n.self.Incarnation = m.Incarnation + 1
				refute = true
			} else if m.Incarnation > n.self.Incarnation {
				n.self.Incarnation = m.Incarnation
			}
			continue
		}
		if m.ID == from {
			// Direct contact already processed the sender; its
			// self-claim still teaches us its incarnation and — for
			// members first met over an inbound connection — its
			// dialable address, which mesh discovery passes on.
			if st := n.members[from]; st != nil {
				if st.Addr == "" && m.Addr != "" {
					st.Addr = m.Addr
				}
				if m.Incarnation > st.Incarnation {
					st.Incarnation = m.Incarnation
				}
			}
			continue
		}
		st := n.members[m.ID]
		if st == nil {
			st = &memberState{Member: m, linked: n.cfg.Mesh}
			if st.State == StateSuspect || st.State == StateDead {
				st.suspectSince = now
				st.lossy = true
			}
			n.members[m.ID] = st
			n.metrics.GossipMerged++
			continue
		}
		if st.Addr == "" && m.Addr != "" {
			st.Addr = m.Addr
		}
		if n.cfg.Mesh {
			st.linked = true
		}
		// Fresh direct evidence outranks rumor: a member answering our
		// own pings is not dead, whatever the gossip says — it will
		// refute the rumor itself.
		if st.linkUp && st.awaiting == 0 && m.State != StateAlive {
			continue
		}
		if supersedes(m, st.Member) {
			if m.State == StateDead && st.State != StateDead {
				st.lossy = true
				st.linkUp = false
			}
			if m.State == StateSuspect && st.State == StateAlive {
				st.suspectSince = now
			}
			st.Incarnation = m.Incarnation
			st.State = m.State
			n.metrics.GossipMerged++
		}
	}
	var snapshot []broker.MemberInfo
	if refute {
		n.metrics.GossipSent++
		snapshot = n.wireMembersLocked()
	}
	n.mu.Unlock()

	if !refute {
		return nil
	}
	return []broker.Outbound{{To: from, Msg: broker.Message{Kind: broker.MsgGossip, Members: snapshot}}}
}

// run is the TCP-attached background loop: Tick on a real ticker.
func (n *Node) run() {
	defer n.wg.Done()
	//brokervet:allow clockcheck real-TCP attach path: the ticker only paces Tick calls; all time the logic sees still flows through cfg.Clock
	t := time.NewTicker(n.cfg.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.Tick()
		}
	}
}

// Close stops the background ticker (if any). It does not shut down
// the underlying broker; membership can be detached and re-attached
// around a broker's lifetime.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// String renders the member list compactly (diagnostics, examples).
func (n *Node) String() string {
	ms := n.Members()
	out := ""
	for i, m := range ms {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%s@%d", m.ID, m.State, m.Incarnation)
	}
	return out
}
