package cluster

// Kill -9 acceptance: a durable broker is SIGKILLed with a populated
// routing table and restarted from its data directory in a separate
// OS process. The restarted broker must rejoin the overlay and route
// exactly like a never-crashed oracle pair WITHOUT any client
// re-subscribing, and the link digests on both sides must converge —
// no stale reverse-path entries survive on either end of the healed
// link.
//
// The child broker runs via the standard helper-process re-exec
// pattern (this test binary invoked with -test.run pinned to
// TestHelperDurableBroker and an env guard); the parent drives it
// over stdin/stdout.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"probsum/internal/subscription"
	"probsum/pubsub"
)

// TestHelperDurableBroker is not a test: it is the child process body.
func TestHelperDurableBroker(t *testing.T) {
	if os.Getenv("PROBSUM_DURABLE_CHILD") != "1" {
		t.Skip("helper process body, driven by TestKillRestartRecoversFromDisk")
	}
	id := os.Getenv("PROBSUM_CHILD_ID")
	addr := os.Getenv("PROBSUM_CHILD_ADDR")
	dir := os.Getenv("PROBSUM_CHILD_DATA")
	peerID := os.Getenv("PROBSUM_CHILD_PEER_ID")
	peerAddr := os.Getenv("PROBSUM_CHILD_PEER_ADDR")

	b, err := pubsub.ListenBroker(id, addr, pubsub.Pairwise, pubsub.Config{},
		pubsub.WithDataDir(dir), pubsub.WithJournalSync(1))
	if err != nil {
		fmt.Printf("ERR listen: %v\n", err)
		os.Exit(1)
	}
	n := Attach(b, fastConfig())
	n.AddMember(Member{ID: peerID, Addr: peerAddr}, true)
	if rs, ok := b.Recovery(); ok {
		fmt.Printf("RECOVERED subs=%d clients=%d neighbors=%d snapshot=%d journal=%d skipped=%d truncated=%v\n",
			rs.Subscriptions, rs.Clients, rs.Neighbors, rs.SnapshotOps, rs.JournalRecords, rs.Skipped, rs.Truncated)
	}
	fmt.Println("READY")

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		switch sc.Text() {
		case "digest":
			out, ok := b.LinkDigest(peerID)
			recv := b.ReceivedDigest(peerID)
			fmt.Printf("DIGEST ok=%v out=%d/%d recv=%d/%d\n", ok, out.Count, out.Root, recv.Count, recv.Root)
		case "quit":
			n.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err := b.Shutdown(ctx)
			cancel()
			fmt.Printf("BYE %v\n", err)
			return
		}
	}
	// Stdin closed without "quit": the parent died; exit with it.
}

// durableChild drives one helper-process broker.
type durableChild struct {
	t     *testing.T
	cmd   *exec.Cmd
	stdin io.WriteCloser
	lines chan string
}

func startDurableChild(t *testing.T, id, addr, dir, peerID, peerAddr string) *durableChild {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperDurableBroker$")
	cmd.Env = append(os.Environ(),
		"PROBSUM_DURABLE_CHILD=1",
		"PROBSUM_CHILD_ID="+id,
		"PROBSUM_CHILD_ADDR="+addr,
		"PROBSUM_CHILD_DATA="+dir,
		"PROBSUM_CHILD_PEER_ID="+peerID,
		"PROBSUM_CHILD_PEER_ADDR="+peerAddr,
	)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &durableChild{t: t, cmd: cmd, stdin: stdin, lines: make(chan string, 256)}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case c.lines <- sc.Text():
			default: // drop if the parent stopped reading
			}
		}
		close(c.lines)
	}()
	t.Cleanup(func() {
		if c.cmd.ProcessState == nil {
			c.cmd.Process.Kill()
			c.cmd.Wait()
		}
	})
	return c
}

// expect reads child stdout until a line with the given prefix
// appears, returning the full line.
func (c *durableChild) expect(prefix string, d time.Duration) string {
	c.t.Helper()
	deadline := time.After(d)
	for {
		select {
		case line, ok := <-c.lines:
			if !ok {
				c.t.Fatalf("child exited while waiting for %q", prefix)
			}
			if strings.HasPrefix(line, prefix) {
				return line
			}
		case <-deadline:
			c.t.Fatalf("timeout waiting for child line %q", prefix)
		}
	}
}

func (c *durableChild) send(cmdLine string) {
	c.t.Helper()
	if _, err := fmt.Fprintln(c.stdin, cmdLine); err != nil {
		c.t.Fatalf("child stdin: %v", err)
	}
}

// sigkill terminates the child the hard way — no drain, no final
// snapshot, exactly what a machine crash looks like to the journal.
func (c *durableChild) sigkill() {
	c.t.Helper()
	c.cmd.Process.Kill()
	c.cmd.Wait()
}

func (c *durableChild) quit() {
	c.t.Helper()
	c.send("quit")
	done := make(chan struct{})
	go func() { c.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		c.t.Fatal("child did not exit on quit")
	}
}

// killProbe is one post-recovery probe publication: the value it
// carries and, per the never-crashed oracle, which client must
// receive it under which subscription ("" = nobody).
type killProbe struct {
	val        int64
	wantClient string
	wantSub    string
}

// oracleKillDeliveries runs the same topology and subscription script
// with two in-process brokers that never crash, publishes one
// publication per probe value, and reports who received what — the
// reference the recovered run must match.
func oracleKillDeliveries(t *testing.T, vals []int64) []killProbe {
	t.Helper()
	o1, err := pubsub.ListenBroker("O1", "127.0.0.1:0", pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpShutdown(t, o1)
	o2, err := pubsub.ListenBroker("O2", "127.0.0.1:0", pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpShutdown(t, o2)
	if err := o1.ConnectPeer("O2", o2.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := o2.ConnectPeer("O1", o1.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	alice, err := pubsub.Dial(ctx, o1.Addr(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	carol, err := pubsub.Dial(ctx, o2.Addr(), "carol")
	if err != nil {
		t.Fatal(err)
	}
	defer carol.Close()
	bob, err := pubsub.Dial(ctx, o2.Addr(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()

	subscribeKillScript(t, ctx, alice, carol)
	// s4 arrives mid-outage in the recovered run; the oracle simply
	// subscribes it (no outage to survive).
	if err := carol.Subscribe(ctx, "s4", tile2(600, 700)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "oracle subscriptions to settle", func() bool {
		return o2.Metrics().SubsReceived >= 4
	})

	probes := make([]killProbe, len(vals))
	for i, v := range vals {
		probes[i] = killProbe{val: v}
		pubID := fmt.Sprintf("op%d", i)
		if err := bob.Publish(ctx, pubID, subscription.NewPublication(v, v)); err != nil {
			t.Fatal(err)
		}
		for client, ch := range map[string]*pubsub.Client{"alice": alice, "carol": carol} {
			select {
			case n := <-ch.Notifications():
				if n.PubID != pubID {
					t.Fatalf("oracle: unexpected notification %+v for probe %d", n, i)
				}
				probes[i].wantClient, probes[i].wantSub = client, n.SubID
			case <-time.After(700 * time.Millisecond):
			}
		}
	}
	return probes
}

// subscribeKillScript installs the shared subscription script: alice
// (broker 1) owns s1 and s2, carol (broker 2) owns s3 and s4. The
// boxes are disjoint so every probe has exactly one matching
// subscription.
func subscribeKillScript(t *testing.T, ctx context.Context, alice, carol *pubsub.Client) {
	t.Helper()
	if err := alice.Subscribe(ctx, "s1", tile2(0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := alice.Subscribe(ctx, "s2", tile2(400, 500)); err != nil {
		t.Fatal(err)
	}
	if err := carol.Subscribe(ctx, "s3", tile2(800, 900)); err != nil {
		t.Fatal(err)
	}
}

// TestKillRestartRecoversFromDisk is the ISSUE 6 acceptance scenario.
func TestKillRestartRecoversFromDisk(t *testing.T) {
	probeVals := []int64{50, 450, 850, 650, 950}
	want := oracleKillDeliveries(t, probeVals)

	addrs := freeAddrs(t, 2)
	childAddr, survAddr := addrs[0], addrs[1]
	dir := t.TempDir()

	// Survivor broker, in-process, with the membership layer driving
	// reconnects and digest gossip.
	b2, err := pubsub.ListenBroker("B2", survAddr, pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpShutdown(t, b2)
	n2 := Attach(b2, fastConfig())
	defer n2.Close()
	n2.AddMember(Member{ID: "B1", Addr: childAddr}, true)

	// Durable broker in a child process.
	child := startDurableChild(t, "B1", childAddr, dir, "B2", survAddr)
	child.expect("READY", 10*time.Second)
	waitFor(t, 10*time.Second, "cluster assembly", func() bool {
		m, ok := n2.Member("B1")
		return ok && m.State == StateAlive
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	alice, err := pubsub.Dial(ctx, childAddr, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	carol, err := pubsub.Dial(ctx, survAddr, "carol")
	if err != nil {
		t.Fatal(err)
	}
	defer carol.Close()
	bob, err := pubsub.Dial(ctx, survAddr, "bob")
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()

	subscribeKillScript(t, ctx, alice, carol)
	// s1 and s2 must cross to the survivor (and hit the child's
	// journal) before the kill; a delivered probe proves both ends.
	waitFor(t, 5*time.Second, "subscriptions to reach the survivor", func() bool {
		return b2.Metrics().SubsReceived >= 3
	})
	if err := bob.Publish(ctx, "warm", subscription.NewPublication(50, 50)); err != nil {
		t.Fatal(err)
	}
	if n := recvNotification(t, alice, 5*time.Second, "warm"); n.SubID != "s1" {
		t.Fatalf("warm-up probe delivered under %s", n.SubID)
	}

	// SIGKILL: no drain, no snapshot flush. The journal (fsync every
	// record) is all that survives.
	child.sigkill()
	waitFor(t, 10*time.Second, "survivor to declare B1 dead", func() bool {
		m, _ := n2.Member("B1")
		return m.State == StateDead
	})

	// A subscription arriving while the peer is down: the survivor
	// admits it toward B1, the forward dies on the wire. Healing must
	// carry it over — without carol re-issuing it.
	if err := carol.Subscribe(ctx, "s4", tile2(600, 700)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "survivor to admit s4", func() bool {
		return b2.Metrics().SubsReceived >= 4
	})

	// Restart from the same data directory, same address. NOBODY
	// re-subscribes: recovery plus link healing must restore routing.
	child2 := startDurableChild(t, "B1", childAddr, dir, "B2", survAddr)
	rec := child2.expect("RECOVERED", 10*time.Second)
	// Three subscriptions: alice's s1 and s2 plus carol's s3, which the
	// survivor had forwarded over the link before the crash.
	if !strings.Contains(rec, "subs=3 ") || !strings.Contains(rec, "clients=1 ") || !strings.Contains(rec, "neighbors=1 ") {
		t.Fatalf("recovery stats = %q, want 3 subscriptions, 1 client, 1 neighbor", rec)
	}
	child2.expect("READY", 10*time.Second)
	waitFor(t, 15*time.Second, "survivor to heal the link", func() bool {
		m, _ := n2.Member("B1")
		return m.State == StateAlive
	})

	// Alice's TCP connection died with the old process; re-dialing
	// under the same name re-binds the delivery stream to the
	// RECOVERED subscription state (no Subscribe calls).
	alice2, err := pubsub.Dial(ctx, childAddr, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice2.Close()

	// Both directions of the link must converge digest-wise: each
	// side's sender digest equals the other side's receiver digest —
	// i.e. no missing and no stale reverse-path entries anywhere.
	waitFor(t, 15*time.Second, "link digests to converge", func() bool {
		child2.send("digest")
		line := child2.expect("DIGEST", 5*time.Second)
		sOut, sOk := b2.LinkDigest("B1")
		sRecv := b2.ReceivedDigest("B1")
		if !sOk {
			return false
		}
		wantLine := fmt.Sprintf("DIGEST ok=true out=%d/%d recv=%d/%d",
			sRecv.Count, sRecv.Root, sOut.Count, sOut.Root)
		return line == wantLine
	})

	// Post-recovery delivery matches the never-crashed oracle probe by
	// probe. Publications are at-most-once across a settling link, so
	// each probe retries under fresh IDs; a probe the oracle says
	// nobody gets must stay silent here too.
	clients := map[string]*pubsub.Client{"alice": alice2, "carol": carol}
	for i, p := range want {
		if p.wantClient == "" {
			if err := bob.Publish(ctx, fmt.Sprintf("kp%d", i), subscription.NewPublication(p.val, p.val)); err != nil {
				t.Fatal(err)
			}
			continue // silence asserted by the strict PubID checks below
		}
		publishUntil(t, bob, clients[p.wantClient], fmt.Sprintf("kp%d", i), subscription.NewPublication(p.val, p.val), p.wantSub)
	}

	// Drain both clients briefly: nothing may arrive that the oracle
	// did not predict (no stale routing, no duplicate deliveries of a
	// probe already consumed).
	for name, c := range clients {
		select {
		case n := <-c.Notifications():
			t.Fatalf("unexpected delivery to %s: %+v", name, n)
		case <-time.After(300 * time.Millisecond):
		}
	}

	// Graceful exit flushes the final snapshot; a third boot must then
	// recover everything from the snapshot alone (journal compacted).
	child2.quit()
	child3 := startDurableChild(t, "B1", childAddr, dir, "B2", survAddr)
	rec3 := child3.expect("RECOVERED", 10*time.Second)
	if !strings.Contains(rec3, "journal=0") || !strings.Contains(rec3, "skipped=0") {
		t.Fatalf("post-snapshot recovery stats = %q, want a compacted journal", rec3)
	}
	if !strings.Contains(rec3, "subs=4 ") {
		t.Fatalf("post-snapshot recovery stats = %q, want all 4 subscriptions (s4 healed over)", rec3)
	}
	child3.quit()
}
