package cluster

// Declarative topology: a cluster described in one JSON file that
// every broker is started from, instead of hand-wiring -peer flags
// per daemon. Start launches the local broker named in the file,
// attaches membership, and lets the reconnect loop establish the
// file's links in any boot order; Join is the seed-node alternative
// where the member list (and a full-mesh overlay) assembles itself
// through gossip.

import (
	"encoding/json"
	"fmt"
	"os"
	"slices"

	"probsum/pubsub"
)

// TopologyNode declares one broker of the cluster.
type TopologyNode struct {
	ID string `json:"id"`
	// Listen is the broker's listen address. It doubles as the address
	// peers dial, so it must be concrete ("10.0.0.7:7001", not
	// ":7001") for cross-host clusters.
	Listen string `json:"listen"`
}

// Topology is the declarative cluster description.
//
//	{
//	  "policy": "group",
//	  "nodes": [
//	    {"id": "B1", "listen": "127.0.0.1:7001"},
//	    {"id": "B2", "listen": "127.0.0.1:7002"},
//	    {"id": "B3", "listen": "127.0.0.1:7003"}
//	  ],
//	  "links": [["B1", "B2"], ["B2", "B3"]]
//	}
type Topology struct {
	// Policy is the coverage policy name (flood | pairwise | group);
	// empty selects group, the paper's algorithm.
	Policy string `json:"policy,omitempty"`
	// Delta is the group-policy error probability (pubsub default when
	// zero), Seed the checker seed (likewise).
	Delta float64 `json:"delta,omitempty"`
	Seed  uint64  `json:"seed,omitempty"`
	// Nodes declares the brokers; Links the bidirectional overlay
	// edges between them.
	Nodes []TopologyNode `json:"nodes"`
	Links [][2]string    `json:"links"`
}

// ParseTopology decodes and validates a topology document.
func ParseTopology(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("cluster: topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: topology: %w", err)
	}
	return ParseTopology(data)
}

// Validate checks structural soundness: at least one node, unique
// non-empty IDs, listen addresses present, and links that reference
// declared nodes without self-loops.
func (t *Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("cluster: topology has no nodes")
	}
	seen := make(map[string]bool, len(t.Nodes))
	for i, n := range t.Nodes {
		if n.ID == "" {
			return fmt.Errorf("cluster: topology node %d has no id", i)
		}
		if n.Listen == "" {
			return fmt.Errorf("cluster: topology node %s has no listen address", n.ID)
		}
		if seen[n.ID] {
			return fmt.Errorf("cluster: duplicate topology node %s", n.ID)
		}
		seen[n.ID] = true
	}
	if t.Policy != "" {
		if _, err := pubsub.ParsePolicy(t.Policy); err != nil {
			return err
		}
	}
	for i, l := range t.Links {
		if l[0] == l[1] {
			return fmt.Errorf("cluster: link %d connects %s to itself", i, l[0])
		}
		for _, id := range l {
			if !seen[id] {
				return fmt.Errorf("cluster: link %d references unknown node %s", i, id)
			}
		}
	}
	return nil
}

// NodeByID returns the declaration for one broker.
func (t *Topology) NodeByID(id string) (TopologyNode, bool) {
	for _, n := range t.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return TopologyNode{}, false
}

// PeersOf returns the IDs linked to id, sorted and deduplicated.
func (t *Topology) PeersOf(id string) []string {
	var out []string
	for _, l := range t.Links {
		switch id {
		case l[0]:
			out = append(out, l[1])
		case l[1]:
			out = append(out, l[0])
		}
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// policy resolves the topology's coverage policy and broker tuning.
func (t *Topology) policy() (pubsub.Policy, pubsub.Config, error) {
	name := t.Policy
	if name == "" {
		name = "group"
	}
	p, err := pubsub.ParsePolicy(name)
	if err != nil {
		return 0, pubsub.Config{}, err
	}
	return p, pubsub.Config{ErrorProbability: t.Delta, Seed: t.Seed}, nil
}

// Start launches the topology's broker named selfID on its declared
// listen address, attaches a membership node, and registers every
// other declared broker as a member — the file's link partners as
// LINKED members, whose connections the reconnect loop establishes
// and maintains (so the cluster assembles regardless of boot order
// and re-assembles after crashes), the rest as gossip-tracked only.
// Shut down with Node.Close then Broker.Shutdown.
func Start(topo *Topology, selfID string, cfg Config, opts ...pubsub.TCPOption) (*Node, *pubsub.Broker, error) {
	if err := topo.Validate(); err != nil {
		return nil, nil, err
	}
	self, ok := topo.NodeByID(selfID)
	if !ok {
		return nil, nil, fmt.Errorf("cluster: broker %s is not in the topology", selfID)
	}
	policy, pcfg, err := topo.policy()
	if err != nil {
		return nil, nil, err
	}
	b, err := pubsub.ListenBroker(selfID, self.Listen, policy, pcfg, opts...)
	if err != nil {
		return nil, nil, err
	}
	n := Attach(b, cfg)
	peers := topo.PeersOf(selfID)
	for _, tn := range topo.Nodes {
		if tn.ID == selfID {
			continue
		}
		n.AddMember(Member{ID: tn.ID, Addr: tn.Listen}, slices.Contains(peers, tn.ID))
	}
	return n, b, nil
}

// Join is the seed-node alternative to a topology file: the broker
// starts on listen, links to the given seed brokers (NAME=ADDR form,
// as a map), and discovers the rest of the cluster through gossip —
// every discovered member is linked (mesh mode), so the overlay
// converges to a full mesh without any file describing it. An empty
// seed map is valid and makes this broker a pure seed: the FIRST
// broker of a cluster has nobody to join, but must still run the
// membership layer so later joiners' gossip can introduce members to
// each other through it.
func Join(selfID, listen string, seeds map[string]string, policy pubsub.Policy, pcfg pubsub.Config, cfg Config, opts ...pubsub.TCPOption) (*Node, *pubsub.Broker, error) {
	cfg.Mesh = true
	b, err := pubsub.ListenBroker(selfID, listen, policy, pcfg, opts...)
	if err != nil {
		return nil, nil, err
	}
	n := Attach(b, cfg)
	for id, addr := range seeds {
		n.AddMember(Member{ID: id, Addr: addr}, true)
	}
	return n, b, nil
}
