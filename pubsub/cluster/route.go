// Rendezvous routing over the SWIM member view (DESIGN.md §14).
//
// The Router implements broker.Router on top of a membership Node: it
// slices attribute 0 into fixed-width cells, assigns each cell a
// rendezvous broker by highest-random-weight hashing over the alive
// member set (the same rendezvous idiom as the store's
// WithRendezvousPlacement), and picks overlay next hops by greedy
// distance over the sorted member order — on the scale harness's
// ring+chords overlay (ring edges are sorted-adjacent, chords are
// shortcuts) every greedy step strictly shrinks the remaining
// distance, so routes terminate without per-destination state.
//
// The router's member view is a cache: Node.routeEpoch counts every
// membership mutation, and lookups rebuild the view lazily when the
// cache falls behind. Tick kicks the router once per call; the kick
// re-announces client-owned routed subscriptions whose rendezvous or
// next hop moved (a member died, a closer path appeared) and is
// epoch-gated, so steady state costs one atomic load.
//
// Lock order: broker.mu → Router.mu → Node.mu. Broker handlers call
// the lookup methods while holding broker.mu; kick holds NO Router
// lock while calling back into the broker.
package cluster

import (
	"sync"
	"sync/atomic"

	"probsum/internal/broker"
	"probsum/internal/subscription"
)

// RouterConfig tunes the rendezvous mapping. Zero values select the
// defaults noted on each field.
type RouterConfig struct {
	// CellWidth is the attribute-0 span of one rendezvous cell (64).
	// Every publication value v belongs to cell floor(v/CellWidth); a
	// subscription owns every cell its attribute-0 interval overlaps.
	CellWidth int64
	// MaxCells caps how many cells a subscription may span before it
	// floods instead of routing (8): a near-unbounded subscription
	// would rendezvous everywhere anyway, and flooding it costs less
	// than announcing it toward every owner.
	MaxCells int
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.CellWidth <= 0 {
		c.CellWidth = 64
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 8
	}
	return c
}

// Router maps attribute-space cells to rendezvous brokers over a
// membership Node's member view. Create with AttachRouter; safe for
// concurrent use.
type Router struct {
	n   *Node
	cfg RouterConfig
	// b is the broker the kick re-announces through — an atomic
	// pointer so a crash/restart harness can rebind the router to the
	// recovered broker instance.
	b atomic.Pointer[broker.Broker]
	// lastKick is the routeEpoch the last kick ran at: the gate that
	// makes steady-state kicks free.
	lastKick atomic.Uint64

	mu sync.Mutex
	// +guarded_by:mu
	epoch uint64
	// view is immutable once built; the pointer swaps under mu.
	// +guarded_by:mu
	view *routeView
}

// routeView is one immutable snapshot of the member view, in the
// shape the routing decisions consume.
type routeView struct {
	self string
	// alive is the sorted alive member set, self included — the HRW
	// candidate set rendezvous ownership is computed over.
	alive []string
	// known is every tracked member plus self, sorted — the overlay
	// position line greedy next-hop distance is measured on.
	known []string
	pos   map[string]int
	// up marks members with a live overlay link — the usable hops.
	up map[string]bool
}

// AttachRouter wires rendezvous routing between a membership node and
// its broker: the broker consults the router on every subscribe and
// publish, and the node kicks it after membership changes. Detach by
// calling b.SetRouter(nil) and n.DetachRouter (flood mode — the
// rollback knob).
func AttachRouter(n *Node, b *broker.Broker, cfg RouterConfig) *Router {
	r := &Router{n: n, cfg: cfg.withDefaults()}
	r.b.Store(b)
	n.router.Store(r)
	b.SetRouter(r)
	return r
}

// DetachRouter unhooks the node-side kick (the broker side is
// b.SetRouter(nil)).
func (n *Node) DetachRouter() { n.router.Store(nil) }

// Rebind points the router at a recovered broker instance (chaos
// restart: the journal-replayed broker replaces the crashed one) and
// re-registers the router with it.
func (r *Router) Rebind(b *broker.Broker) {
	r.b.Store(b)
	b.SetRouter(r)
	// Force the next kick to re-announce against the current view.
	r.lastKick.Store(0)
}

// getView returns the current view snapshot, rebuilding it when the
// node's routeEpoch has moved past the cached one.
func (r *Router) getView() *routeView {
	e := r.n.routeEpoch.Load()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.view == nil || r.epoch != e {
		r.view = r.buildView()
		r.epoch = e
	}
	return r.view
}

// buildView snapshots the member view from the node.
func (r *Router) buildView() *routeView {
	n := r.n
	n.mu.Lock()
	self := n.self.ID
	v := &routeView{
		self:  self,
		alive: make([]string, 0, len(n.order)+1),
		known: make([]string, 0, len(n.order)+1),
		up:    make(map[string]bool),
	}
	for _, st := range n.order {
		// order is sorted ascending and never contains self.
		v.known = append(v.known, st.ID)
		if st.State == StateAlive {
			v.alive = append(v.alive, st.ID)
		}
		if st.linked && st.linkUp {
			v.up[st.ID] = true
		}
	}
	n.mu.Unlock()
	v.known = insertSorted(v.known, self)
	v.alive = insertSorted(v.alive, self)
	v.pos = make(map[string]int, len(v.known))
	for i, id := range v.known {
		v.pos[id] = i
	}
	return v
}

// insertSorted inserts id into its sorted position in ids (built
// ascending without it).
func insertSorted(ids []string, id string) []string {
	i := 0
	for i < len(ids) && ids[i] < id {
		i++
	}
	ids = append(ids, "")
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// Targets implements broker.Router: the rendezvous owners of every
// cell the subscription's attribute-0 interval overlaps, deduplicated.
func (r *Router) Targets(sub subscription.Subscription) ([]string, bool) {
	if len(sub.Bounds) == 0 {
		return nil, false
	}
	lo, hi := sub.Bounds[0].Lo, sub.Bounds[0].Hi
	if hi < lo {
		return nil, false
	}
	loCell := cellOf(lo, r.cfg.CellWidth)
	hiCell := cellOf(hi, r.cfg.CellWidth)
	if hiCell-loCell+1 > int64(r.cfg.MaxCells) {
		return nil, false // spans too much of the space: flood instead
	}
	v := r.getView()
	if len(v.alive) < 2 {
		return nil, false // routing needs somewhere to route to
	}
	var targets []string
	seen := make(map[string]bool, r.cfg.MaxCells)
	for c := loCell; c <= hiCell; c++ {
		owner := hrwOwner(c, v.alive)
		if !seen[owner] {
			seen[owner] = true
			targets = append(targets, owner)
		}
	}
	return targets, true
}

// PubTarget implements broker.Router: the rendezvous owner of the
// publication's attribute-0 cell. A publication matching a routed
// subscription lies inside its attribute-0 interval, so both map to
// the same cell owner — which is what guarantees they meet.
func (r *Router) PubTarget(pub subscription.Publication) (string, bool) {
	if len(pub.Values) == 0 {
		return "", false
	}
	v := r.getView()
	if len(v.alive) < 2 {
		return "", false
	}
	return hrwOwner(cellOf(pub.Values[0], r.cfg.CellWidth), v.alive), true
}

// NextHop implements broker.Router: the live linked member strictly
// closer to target on the sorted member line. Ties break to the
// lowest ID; no strictly closer live hop means no progress (the
// caller floods).
func (r *Router) NextHop(target string) (string, bool) {
	v := r.getView()
	tpos, ok := v.pos[target]
	if !ok {
		return "", false
	}
	bestD := absInt(v.pos[v.self] - tpos)
	hop := ""
	for _, id := range v.known {
		if !v.up[id] {
			continue
		}
		if d := absInt(v.pos[id] - tpos); d < bestD {
			bestD = d
			hop = id
		}
	}
	return hop, hop != ""
}

// kick re-routes after membership changes: epoch-gated (steady state
// is one atomic load), then re-announces every client-owned routed
// subscription whose rendezvous or next hop moved. Called from Tick
// with no locks held; must not hold r.mu while calling the broker
// (lock order, see the package comment).
func (r *Router) kick() {
	e := r.n.routeEpoch.Load()
	if r.lastKick.Swap(e) == e {
		return
	}
	b := r.b.Load()
	if b == nil || !b.HasRoutedClientSubs() {
		return
	}
	for _, o := range b.ReannounceRoutes() {
		r.n.link.Send(o.To, o.Msg)
	}
}

// cellOf returns the cell index containing v (floor division, exact
// for negatives).
func cellOf(v, width int64) int64 {
	q := v / width
	if v%width != 0 && v < 0 {
		q--
	}
	return q
}

// hrwOwner returns the highest-random-weight owner of a cell among
// ids: every (cell, member) pair hashes to a score and the highest
// score wins, so a membership change remaps only the cells the
// changed member owned — the rendezvous-hashing stability property.
func hrwOwner(cell int64, ids []string) string {
	const phi = 0x9e3779b97f4a7c15
	key := mix64(uint64(cell) + phi)
	best, bestScore := "", uint64(0)
	for _, id := range ids {
		if s := mix64(key ^ fnv1a(id)); best == "" || s > bestScore {
			best, bestScore = id, s
		}
	}
	return best
}

// RendezvousOwner computes the rendezvous broker of the cell
// containing attribute-0 value v among a static member set — the
// oracle form of the mapping for harnesses that must know the owner
// without running a node (e.g. the chaos kill-the-rendezvous
// schedule).
func RendezvousOwner(v int64, cfg RouterConfig, ids []string) string {
	cfg = cfg.withDefaults()
	return hrwOwner(cellOf(v, cfg.CellWidth), ids)
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
