// Package pubsub is the public API for running content-based
// publish/subscribe broker overlays with coverage-based subscription
// reduction — the distributed side of the Middleware 2006 paper this
// library reproduces.
//
// Brokers form an overlay; clients attach to brokers, subscribe with
// boxes (see package subsume), and publish points. Subscriptions
// flood the overlay along reverse paths; depending on the coverage
// Policy, a broker suppresses forwarding a subscription to a neighbor
// when the subscriptions already sent to that neighbor cover it —
// pairwise (classical, exact) or group coverage (the paper's
// probabilistic algorithm, which suppresses strictly more traffic at
// a bounded risk of losing publications).
//
// The package offers the same protocol over two transports behind one
// surface (see Transport, Broker, Client):
//
//   - NewSimTransport hosts the overlay on the deterministic
//     in-process simulator — the evaluation and testing regime.
//   - NewTCPTransport hosts it on real sockets with concurrent
//     message handling; ListenBroker and Dial are the cross-process
//     forms used by cmd/brokerd and cmd/psclient.
//
// Network is the older, simulator-only facade kept for callers that
// want synchronous pull-style access to deliveries.
package pubsub

import (
	"fmt"
	"strings"

	"probsum/internal/broker"
	"probsum/internal/simnet"
	"probsum/internal/store"
	"probsum/internal/subscription"
	"probsum/subsume"
)

// Policy selects subscription-forwarding reduction.
type Policy int

// Coverage policies.
const (
	// Flood forwards every subscription (no reduction).
	Flood Policy = iota + 1
	// Pairwise suppresses subscriptions covered by a single
	// previously forwarded subscription (exact, classical).
	Pairwise
	// Group suppresses subscriptions covered by the union of
	// previously forwarded subscriptions, decided probabilistically.
	Group
)

func (p Policy) String() string {
	switch p {
	case Flood:
		return "flood"
	case Pairwise:
		return "pairwise"
	case Group:
		return "group"
	default:
		return "unknown"
	}
}

// ParsePolicy parses a policy name as accepted by the CLI tools:
// "flood" (or "none"), "pairwise", and "group". It is the single
// string→Policy conversion shared by cmd/brokerd, cmd/psclient,
// examples and any embedding program.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "flood", "none":
		return Flood, nil
	case "pairwise":
		return Pairwise, nil
	case "group":
		return Group, nil
	default:
		return 0, fmt.Errorf("pubsub: unknown policy %q (want flood | pairwise | group)", s)
	}
}

func (p Policy) toStore() (store.Policy, error) {
	switch p {
	case Flood:
		return store.PolicyNone, nil
	case Pairwise:
		return store.PolicyPairwise, nil
	case Group:
		return store.PolicyGroup, nil
	default:
		return 0, fmt.Errorf("pubsub: invalid policy %d", p)
	}
}

// Subscription and Publication are the content types (see package
// subsume for builders).
type (
	Subscription = subscription.Subscription
	Publication  = subscription.Publication
)

// BatchSub pairs a subscription with its globally unique ID inside a
// Client.SubscribeBatch burst.
type BatchSub = broker.BatchSub

// BatchPub pairs a publication with its globally unique ID inside a
// Client.PublishBatch burst.
type BatchPub = broker.BatchPub

// Notification is a delivered publication together with the matched
// subscription ID.
type Notification struct {
	SubID string
	PubID string
	Pub   Publication
}

// Metrics aggregates broker activity counters.
type Metrics = broker.Metrics

// Config tunes the probabilistic checker used under the Group policy
// and optional link-failure injection.
type Config struct {
	// ErrorProbability is the per-decision false-cover bound δ
	// (default 1e-6).
	ErrorProbability float64
	// MaxTrials caps Monte-Carlo guesses per decision (default 100000).
	MaxTrials int
	// Seed makes all broker decisions reproducible (default 1).
	Seed uint64
	// DropRate and DupRate inject per-message loss and duplication on
	// broker-to-broker links (default 0), modeling the lossy sensor
	// and MANET environments the paper targets.
	DropRate, DupRate float64
	// DisableCandidatePruning turns off the per-attribute candidate
	// index in every broker coverage table, handing the full forwarded
	// set to each coverage decision. Exists for ablation measurements.
	// Pruning never changes which sets cover which subscriptions
	// (dropped rows are disjoint from the tested one), but the
	// probabilistic checker sees a smaller conflict table, so
	// individual borderline decisions may fall on the other side of
	// the same δ-bounded contract.
	DisableCandidatePruning bool
}

func (c Config) withDefaults() Config {
	if c.ErrorProbability == 0 {
		c.ErrorProbability = 1e-6
	}
	if c.MaxTrials == 0 {
		c.MaxTrials = 100_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TableOptions converts the network tuning into subsume.Table options
// — the exact options AddBroker applies to every per-neighbor coverage
// table (per-neighbor checker seeding is layered on top by the broker;
// Config.Seed feeds that derivation, not an option here). Exported so
// a standalone subsume.Table can share a network's tuning.
func (c Config) TableOptions() []subsume.TableOption {
	c = c.withDefaults()
	opts := []subsume.TableOption{
		subsume.WithTableChecker(
			subsume.WithErrorProbability(c.ErrorProbability),
			subsume.WithMaxTrials(c.MaxTrials),
		),
	}
	if c.DisableCandidatePruning {
		opts = append(opts, subsume.WithTableCandidatePruning(false))
	}
	return opts
}

// Network is an in-process deterministic broker overlay.
type Network struct {
	inner  *simnet.Network
	policy store.Policy
	cfg    Config
}

// NewNetwork creates an empty overlay with the given coverage policy.
func NewNetwork(policy Policy, cfg Config) (*Network, error) {
	sp, err := policy.toStore()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	var opts []simnet.Option
	if cfg.DropRate > 0 || cfg.DupRate > 0 {
		opts = append(opts, simnet.WithFailures(cfg.DropRate, cfg.DupRate, cfg.Seed^0xfa11))
	}
	return &Network{inner: simnet.New(opts...), policy: sp, cfg: cfg}, nil
}

// Dropped reports how many broker-to-broker messages failure injection
// discarded.
func (n *Network) Dropped() int { return n.inner.Dropped() }

// AddBroker creates a broker node.
func (n *Network) AddBroker(id string) error {
	opts := []broker.Option{
		broker.WithSeed(n.cfg.Seed),
		broker.WithTableOptions(n.cfg.TableOptions()...),
	}
	return n.inner.AddBroker(id, n.policy, opts...)
}

// Connect links two brokers bidirectionally.
func (n *Network) Connect(a, b string) error { return n.inner.Connect(a, b) }

// AttachClient binds a client endpoint to a broker.
func (n *Network) AttachClient(client, brokerID string) error {
	return n.inner.AttachClient(client, brokerID)
}

// Subscribe announces a client subscription under a globally unique ID.
func (n *Network) Subscribe(client, subID string, s Subscription) error {
	if err := n.inner.ClientSubscribe(client, subID, s); err != nil {
		return err
	}
	_, err := n.inner.Run()
	return err
}

// Unsubscribe cancels a client subscription.
func (n *Network) Unsubscribe(client, subID string) error {
	if err := n.inner.ClientUnsubscribe(client, subID); err != nil {
		return err
	}
	_, err := n.inner.Run()
	return err
}

// Publish sends a publication from a client and routes it to all
// matching subscribers.
func (n *Network) Publish(client, pubID string, p Publication) error {
	if err := n.inner.ClientPublish(client, pubID, p); err != nil {
		return err
	}
	_, err := n.inner.Run()
	return err
}

// Notifications returns (and leaves in place) the notifications a
// client has received, in order.
func (n *Network) Notifications(client string) []Notification {
	msgs := n.inner.Delivered(client)
	out := make([]Notification, 0, len(msgs))
	for _, m := range msgs {
		if m.Kind != broker.MsgNotify {
			continue
		}
		out = append(out, Notification{SubID: m.SubID, PubID: m.PubID, Pub: m.Pub})
	}
	return out
}

// Metrics returns the summed broker counters.
func (n *Network) Metrics() Metrics { return n.inner.TotalMetrics() }

// BrokerMetrics returns one broker's counters.
func (n *Network) BrokerMetrics(id string) (Metrics, error) {
	b := n.inner.Broker(id)
	if b == nil {
		return Metrics{}, fmt.Errorf("pubsub: unknown broker %s", id)
	}
	return b.Metrics(), nil
}

// Brokers lists broker IDs, sorted.
func (n *Network) Brokers() []string { return n.inner.BrokerIDs() }
