package pubsub

// Wire-level tests for the binary codec negotiation and the batch
// frames (ISSUE 4): bursts reach batch admission as single calls,
// codec upgrades happen end to end, and peers that speak only the
// PR-3 JSON dialect still interoperate in both directions.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"probsum/internal/broker"
	"probsum/internal/interval"
	"probsum/internal/subscription"
)

// tile returns a small non-overlapping box so batch items never cover
// each other and all forward.
func tile(i int64) Subscription {
	return subscription.New(interval.New(i*10, i*10+5), interval.New(0, 5))
}

// TestTCPSubscribeBatchReachesTableOnce is the ISSUE 4 acceptance
// assertion: a wire SUBBATCH of N subscriptions must arrive at the
// downstream coverage table as ONE Table.SubscribeBatch call of N
// items — not N per-item admissions.
func TestTCPSubscribeBatchReachesTableOnce(t *testing.T) {
	a := listenTestBroker(t, "A", Pairwise)
	b := listenTestBroker(t, "B", Pairwise)
	if err := a.ConnectPeer("B", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectPeer("A", a.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	c := dialTest(t, a.Addr(), "alice")

	const n = 16
	subs := make([]BatchSub, n)
	for i := range subs {
		subs[i] = BatchSub{SubID: fmt.Sprintf("s%d", i), Sub: tile(int64(i))}
	}
	if err := c.SubscribeBatch(ctx, subs); err != nil {
		t.Fatal(err)
	}
	// The burst floods A → B as one frame; wait for B to admit it.
	waitMetric(t, b, 5*time.Second, func(m Metrics) bool { return m.SubsReceived == n })

	srvA := a.impl.(*tcpServer)
	tm, ok := srvA.b.NeighborTableMetrics("B")
	if !ok {
		t.Fatal("A has no coverage table for B")
	}
	if tm.Batches != 1 || tm.BatchItems != n {
		t.Fatalf("A→B table admissions: %d batch calls with %d items, want 1 call with %d items (metrics %+v)",
			tm.Batches, tm.BatchItems, n, tm)
	}
	if tm.Subscribes != n {
		t.Fatalf("A→B table saw %d subscribes, want %d", tm.Subscribes, n)
	}

	// The forwarded SUBBATCH must feed B's own tables as one batch
	// too (B has only neighbor A, the arrival port, so nothing is
	// admitted — assert via B's table for A staying empty and the
	// unsubscribe path instead).
	if err := c.UnsubscribeBatch(ctx, []string{"s0", "s1", "s2"}); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, b, 5*time.Second, func(m Metrics) bool { return m.SubsReceived == n }) // unchanged
	waitMetric(t, a, 5*time.Second, func(m Metrics) bool { return m.UnsubsForwarded == 3 })
	tm, _ = srvA.b.NeighborTableMetrics("B")
	if tm.Unsubscribes != 3 {
		t.Fatalf("A→B table unsubscribes = %d, want 3", tm.Unsubscribes)
	}
	if tm.Batches != 1 {
		t.Fatalf("unsubscribe burst triggered %d extra subscribe batches", tm.Batches-1)
	}
}

// TestTCPBatchCoverageWithinBurst pins the batch-admission semantics
// end to end: a burst whose first (broad) subscription covers the
// rest forwards only the broad one.
func TestTCPBatchCoverageWithinBurst(t *testing.T) {
	a := listenTestBroker(t, "A", Pairwise)
	b := listenTestBroker(t, "B", Pairwise)
	if err := a.ConnectPeer("B", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectPeer("A", a.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	c := dialTest(t, a.Addr(), "alice")

	subs := []BatchSub{
		{SubID: "narrow1", Sub: box(40, 60, 40, 60)},
		{SubID: "broad", Sub: box(0, 100, 0, 100)},
		{SubID: "narrow2", Sub: box(10, 20, 10, 20)},
	}
	if err := c.SubscribeBatch(ctx, subs); err != nil {
		t.Fatal(err)
	}
	// Batch admission processes descending volume: broad lands active,
	// both narrows admit covered, so only broad crosses the wire.
	waitMetric(t, a, 5*time.Second, func(m Metrics) bool {
		return m.SubsReceived == 3 && m.SubsForwarded == 1 && m.SubsSuppressed == 2
	})
	waitMetric(t, b, 2*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })

	// The covered narrows still match locally: a publication inside
	// narrow1 published at B must reach the client for all covering
	// subscriptions.
	pub := dialTest(t, b.Addr(), "bob")
	if err := pub.Publish(ctx, "p1", subscription.NewPublication(50, 50)); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		n, ok := recvOne(t, c, 5*time.Second)
		if !ok {
			t.Fatalf("notification %d did not arrive (got %v)", i, got)
		}
		got[n.SubID] = true
	}
	if !got["broad"] || !got["narrow1"] {
		t.Fatalf("deliveries = %v, want broad and narrow1", got)
	}
}

// TestTCPCodecNegotiation pins the upgrade handshake: a binary-capable
// client against a binary-capable broker ends up sending binary, while
// either side pinned to JSON keeps the whole conversation working.
func TestTCPCodecNegotiation(t *testing.T) {
	cases := []struct {
		name        string
		brokerCodec WireCodec
		dialCodec   WireCodec
		wantUpgrade bool
	}{
		{"binary-binary", CodecBinary, CodecBinary, true},
		{"json-broker", CodecJSON, CodecBinary, false},
		{"json-client", CodecBinary, CodecJSON, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := listenTestBroker(t, "B1", Pairwise, WithWireCodec(tc.brokerCodec))
			ctx := testCtx(t)
			c, err := Dial(ctx, b.Addr(), "alice", WithDialCodec(tc.dialCodec))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			pub := dialTest(t, b.Addr(), "bob")

			if err := c.Subscribe(ctx, "s1", box(0, 50, 0, 50)); err != nil {
				t.Fatal(err)
			}
			waitMetric(t, b, 2*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })
			// The ack has necessarily arrived before any notification
			// could; publish → notify forces the full round trip.
			if err := pub.Publish(ctx, "p1", subscription.NewPublication(10, 10)); err != nil {
				t.Fatal(err)
			}
			if _, ok := recvOne(t, c, 2*time.Second); !ok {
				t.Fatal("notification did not arrive")
			}
			tcpC := c.impl.(*tcpClient)
			upgraded := WireCodec(tcpC.wcodec.Load()) == CodecBinary
			if upgraded != tc.wantUpgrade {
				t.Fatalf("client write codec upgraded = %v, want %v", upgraded, tc.wantUpgrade)
			}
			// Post-negotiation traffic keeps flowing.
			if err := pub.Publish(ctx, "p2", subscription.NewPublication(20, 20)); err != nil {
				t.Fatal(err)
			}
			if _, ok := recvOne(t, c, 2*time.Second); !ok {
				t.Fatal("post-negotiation notification did not arrive")
			}
		})
	}
}

// TestTCPLegacyJSONClient drives a hand-rolled PR-3 wire client — raw
// json.Encoder/Decoder, no codec field, ignores frames without a
// message — against a binary-capable broker. It proves old peers
// interoperate: the broker must never send such a client a binary
// frame (the json.Decoder would choke on 0xBF) and must decode its
// JSON frames.
func TestTCPLegacyJSONClient(t *testing.T) {
	b := listenTestBroker(t, "B1", Pairwise)
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	// PR-3 hello: no codec field at all.
	if err := enc.Encode(map[string]any{"hello": "legacy", "client": true}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Frame{Msg: &broker.Message{Kind: broker.MsgSubscribe, SubID: "s1", Sub: box(0, 50, 0, 50)}}); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, b, 2*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })

	pub := dialTest(t, b.Addr(), "bob")
	if err := pub.Publish(testCtx(t), "p1", subscription.NewPublication(25, 25)); err != nil {
		t.Fatal(err)
	}
	// The legacy loop: decode frames, skip everything without a
	// notify. The ack frame arrives first and must parse as JSON.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		var fr Frame
		if err := dec.Decode(&fr); err != nil {
			t.Fatalf("legacy client failed to decode broker stream: %v", err)
		}
		if fr.Msg == nil || fr.Msg.Kind != broker.MsgNotify {
			continue
		}
		if fr.Msg.SubID != "s1" || fr.Msg.PubID != "p1" {
			t.Fatalf("legacy notify = %+v", fr.Msg)
		}
		break
	}
}

// TestTCPLegacyJSONPeer models a PR-3 peer broker (binary pinned off
// via WithWireCodec) against a binary one: the overlay works and the
// binary side never upgrades its port to the peer.
func TestTCPLegacyJSONPeer(t *testing.T) {
	oldB := listenTestBroker(t, "OLD", Pairwise, WithWireCodec(CodecJSON))
	newB := listenTestBroker(t, "NEW", Pairwise)
	if err := oldB.ConnectPeer("NEW", newB.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := newB.ConnectPeer("OLD", oldB.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	sub := dialTest(t, oldB.Addr(), "alice")
	pub := dialTest(t, newB.Addr(), "bob")
	if err := sub.Subscribe(ctx, "s1", box(0, 50, 0, 50)); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, newB, 2*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })
	if err := pub.Publish(ctx, "p1", subscription.NewPublication(10, 10)); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, sub, 2*time.Second); !ok {
		t.Fatal("cross-version notification did not arrive")
	}
	// The new broker's outbound port to OLD must still write JSON: OLD
	// advertised codec 0 in its hello and ack.
	srvNew := newB.impl.(*tcpServer)
	srvNew.mu.Lock()
	p := srvNew.ports["OLD"]
	srvNew.mu.Unlock()
	if p == nil {
		t.Fatal("NEW has no port to OLD")
	}
	if got := p.writeCodec(); got != CodecJSON {
		t.Fatalf("NEW writes %v to the JSON-only peer", got)
	}
}

// TestTCPBatchSplitForLegacyPeer pins the vocabulary downgrade: a
// peer that never advertised a binary codec version may be a
// pre-batch build, so batch messages bound for it must be split into
// the per-item SUB/UNSUB frames its state machine knows. The peer
// here is a raw JSON acceptor that fails the test on any post-PR-3
// message kind.
func TestTCPBatchSplitForLegacyPeer(t *testing.T) {
	a := listenTestBroker(t, "A", Pairwise)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type frameRec struct {
		kind  broker.MsgKind
		subID string
	}
	got := make(chan frameRec, 64)
	fail := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			fail <- err
			return
		}
		defer conn.Close()
		// A PR-3 acceptor: json.Decoder over the inbound peer stream,
		// hello first, then messages; an unknown kind kills the link.
		dec := json.NewDecoder(conn)
		var hello Frame
		if err := dec.Decode(&hello); err != nil || hello.Hello != "A" {
			fail <- fmt.Errorf("bad hello %+v: %v", hello, err)
			return
		}
		for {
			var fr Frame
			if err := dec.Decode(&fr); err != nil {
				return // connection closed at shutdown
			}
			if fr.Msg == nil {
				continue
			}
			if fr.Msg.Kind > broker.MsgNotify {
				fail <- fmt.Errorf("pre-batch peer received kind %v", fr.Msg.Kind)
				return
			}
			got <- frameRec{kind: fr.Msg.Kind, subID: fr.Msg.SubID}
		}
	}()
	if err := a.ConnectPeer("OLD", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}

	ctx := testCtx(t)
	c := dialTest(t, a.Addr(), "alice")
	const n = 5
	subs := make([]BatchSub, n)
	for i := range subs {
		subs[i] = BatchSub{SubID: fmt.Sprintf("s%d", i), Sub: tile(int64(i))}
	}
	if err := c.SubscribeBatch(ctx, subs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		select {
		case rec := <-got:
			if rec.kind != broker.MsgSubscribe || rec.subID != fmt.Sprintf("s%d", i) {
				t.Fatalf("frame %d = %+v, want per-item subscribe of s%d", i, rec, i)
			}
		case err := <-fail:
			t.Fatal(err)
		case <-time.After(5 * time.Second):
			t.Fatalf("legacy peer received %d of %d split frames", i, n)
		}
	}
	if err := c.UnsubscribeBatch(ctx, []string{"s0", "s1"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case rec := <-got:
			if rec.kind != broker.MsgUnsubscribe || rec.subID != fmt.Sprintf("s%d", i) {
				t.Fatalf("unsub frame %d = %+v", i, rec)
			}
		case err := <-fail:
			t.Fatal(err)
		case <-time.After(5 * time.Second):
			t.Fatal("legacy peer did not receive split unsubscribes")
		}
	}
}

// TestTCPClientBatchSplitForLegacyBroker is the client-side mirror of
// the vocabulary downgrade: a broker that never acks is a pre-binary
// build, so Client.SubscribeBatch must reach it as per-item SUB
// frames after the bounded ack wait.
func TestTCPClientBatchSplitForLegacyBroker(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type frameRec struct {
		kind  broker.MsgKind
		subID string
	}
	got := make(chan frameRec, 16)
	fail := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			fail <- err
			return
		}
		defer conn.Close()
		// A PR-3 broker: reads the hello, never acks, json-decodes
		// frames, dies on unknown kinds.
		dec := json.NewDecoder(conn)
		var hello Frame
		if err := dec.Decode(&hello); err != nil || hello.Hello != "alice" || !hello.Client {
			fail <- fmt.Errorf("bad hello %+v: %v", hello, err)
			return
		}
		for {
			var fr Frame
			if err := dec.Decode(&fr); err != nil {
				return
			}
			if fr.Msg == nil {
				continue
			}
			if fr.Msg.Kind > broker.MsgNotify {
				fail <- fmt.Errorf("pre-batch broker received kind %v", fr.Msg.Kind)
				return
			}
			got <- frameRec{kind: fr.Msg.Kind, subID: fr.Msg.SubID}
		}
	}()

	c, err := Dial(testCtx(t), ln.Addr().String(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A short deadline bounds the ack wait; the broker never acks, so
	// the batch splits.
	sctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if err := c.SubscribeBatch(sctx, []BatchSub{
		{SubID: "s0", Sub: tile(0)},
		{SubID: "s1", Sub: tile(1)},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case rec := <-got:
			if rec.kind != broker.MsgSubscribe || rec.subID != fmt.Sprintf("s%d", i) {
				t.Fatalf("frame %d = %+v, want per-item subscribe of s%d", i, rec, i)
			}
		case err := <-fail:
			t.Fatal(err)
		case <-time.After(5 * time.Second):
			t.Fatalf("legacy broker received %d of 2 split frames", i)
		}
	}
}

// TestTCPPeerCodecDowngrade pins that a peer's LATEST advertisement
// wins: after a binary peer re-hellos with no codec (a rollback to a
// JSON-only build), the outbound port must drop back to JSON.
func TestTCPPeerCodecDowngrade(t *testing.T) {
	a := listenTestBroker(t, "A", Pairwise)
	srv := a.impl.(*tcpServer)
	// Stand in for the peer's connections with direct advertisement
	// events (hello/ack handling funnels through learnPeerCodec).
	srv.learnPeerCodec("B", CodecBinary)
	srv.mu.Lock()
	up := srv.peerCodec["B"]
	srv.mu.Unlock()
	if up != CodecBinary {
		t.Fatalf("after binary hello peerCodec = %v", up)
	}
	srv.learnPeerCodec("B", CodecJSON)
	srv.mu.Lock()
	down := srv.peerCodec["B"]
	srv.mu.Unlock()
	if down != CodecJSON {
		t.Fatalf("rollback hello did not downgrade: peerCodec = %v", down)
	}
}

// TestTCPPeerBinaryUpgrade is the positive peer case: two binary
// brokers end up with binary ports in both directions once hellos and
// acks have crossed — at the v5 vocabulary, since both default builds
// advertise it.
func TestTCPPeerBinaryUpgrade(t *testing.T) {
	a := listenTestBroker(t, "A", Pairwise)
	b := listenTestBroker(t, "B", Pairwise)
	if err := a.ConnectPeer("B", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectPeer("A", a.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, pair := range []struct {
		srv  *tcpServer
		peer string
	}{{a.impl.(*tcpServer), "B"}, {b.impl.(*tcpServer), "A"}} {
		for {
			pair.srv.mu.Lock()
			p := pair.srv.ports[pair.peer]
			pair.srv.mu.Unlock()
			if p != nil && p.writeCodec() == CodecBinary5 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s port to %s never upgraded to binary v5", pair.srv.b.ID(), pair.peer)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestTCPPublishBatchDelivery drives Client.PublishBatch end to end
// over a two-broker overlay: one PUBBATCH frame in, every publication
// delivered to the matching subscriber on the far side.
func TestTCPPublishBatchDelivery(t *testing.T) {
	a := listenTestBroker(t, "A", Pairwise)
	b := listenTestBroker(t, "B", Pairwise)
	if err := a.ConnectPeer("B", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.ConnectPeer("A", a.Addr()); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	sub := dialTest(t, b.Addr(), "alice")
	if err := sub.Subscribe(ctx, "s1", box(0, 100, 0, 100)); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, a, 5*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })

	pub := dialTest(t, a.Addr(), "bob")
	const n = 5
	batch := make([]BatchPub, n)
	for i := range batch {
		batch[i] = BatchPub{PubID: fmt.Sprintf("p%d", i), Pub: subscription.NewPublication(int64(i*10), int64(i*10))}
	}
	if err := pub.PublishBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for i := 0; i < n; i++ {
		nt, ok := recvOne(t, sub, 5*time.Second)
		if !ok {
			t.Fatalf("notification %d missing (got %v)", i, got)
		}
		if nt.SubID != "s1" {
			t.Fatalf("notification under %s", nt.SubID)
		}
		got[nt.PubID] = true
	}
	for i := 0; i < n; i++ {
		if !got[fmt.Sprintf("p%d", i)] {
			t.Fatalf("p%d not delivered: %v", i, got)
		}
	}
	if m := a.Metrics(); m.PubsReceived != n || m.PubsForwarded != n {
		t.Fatalf("A publish metrics %+v, want %d received and forwarded", m, n)
	}
}

// TestTCPPublishBatchStaysBatchedForV2Peer pins that a producer batch
// crosses the overlay as ONE PUBBATCH frame when the peer advertised
// the v2 vocabulary.
func TestTCPPublishBatchStaysBatchedForV2Peer(t *testing.T) {
	a := listenTestBroker(t, "A", Pairwise)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	frames := make(chan broker.Message, 16)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := newFrameReader(conn)
		var fr Frame
		if err := r.read(&fr); err != nil || fr.Hello != "A" {
			return
		}
		// A v2-capable peer: the ack advertises binary v2.
		if err := writeJSONFrame(conn, &Frame{Ack: "P", Codec: uint8(CodecBinary2)}); err != nil {
			return
		}
		for {
			if err := r.read(&fr); err != nil {
				return
			}
			if fr.Msg != nil {
				frames <- *fr.Msg
			}
		}
	}()
	if err := a.ConnectPeer("P", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	// The fake peer dials A and announces a subscription so A forwards
	// matching publications to it.
	peerConn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peerConn.Close()
	if err := writeJSONFrame(peerConn, &Frame{Hello: "P", Codec: uint8(CodecBinary2)}); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONFrame(peerConn, &Frame{Msg: &broker.Message{Kind: broker.MsgSubscribe, SubID: "ps", Sub: box(0, 100, 0, 100)}}); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, a, 5*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })

	ctx := testCtx(t)
	c := dialTest(t, a.Addr(), "bob")
	const n = 5
	batch := make([]BatchPub, n)
	for i := range batch {
		batch[i] = BatchPub{PubID: fmt.Sprintf("q%d", i), Pub: subscription.NewPublication(int64(i), int64(i))}
	}
	if err := c.PublishBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-frames:
		if msg.Kind != broker.MsgPublishBatch || len(msg.Pubs) != n {
			t.Fatalf("peer received %v with %d pubs, want one PUBBATCH of %d", msg.Kind, len(msg.Pubs), n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("forwarded publish batch never arrived")
	}
}

// TestTCPPublishBatchSplitForV1Peer pins the vocabulary downgrade: a
// peer that advertised only binary v1 (a PR-4 build) predates the
// PUBBATCH kind, so the batch reaches it as per-item publish frames.
func TestTCPPublishBatchSplitForV1Peer(t *testing.T) {
	a := listenTestBroker(t, "A", Pairwise)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	frames := make(chan broker.Message, 16)
	fail := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			fail <- err
			return
		}
		defer conn.Close()
		r := newFrameReader(conn)
		var fr Frame
		if err := r.read(&fr); err != nil || fr.Hello != "A" {
			fail <- fmt.Errorf("bad hello %+v: %v", fr, err)
			return
		}
		if err := writeJSONFrame(conn, &Frame{Ack: "P", Codec: uint8(CodecBinary)}); err != nil {
			fail <- err
			return
		}
		for {
			if err := r.read(&fr); err != nil {
				return
			}
			if fr.Msg == nil {
				continue
			}
			if fr.Msg.Kind > broker.MsgUnsubscribeBatch {
				fail <- fmt.Errorf("v1 peer received kind %v", fr.Msg.Kind)
				return
			}
			frames <- *fr.Msg
		}
	}()
	if err := a.ConnectPeer("P", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	peerConn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peerConn.Close()
	if err := writeJSONFrame(peerConn, &Frame{Hello: "P", Codec: uint8(CodecBinary)}); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONFrame(peerConn, &Frame{Msg: &broker.Message{Kind: broker.MsgSubscribe, SubID: "ps", Sub: box(0, 100, 0, 100)}}); err != nil {
		t.Fatal(err)
	}
	waitMetric(t, a, 5*time.Second, func(m Metrics) bool { return m.SubsReceived == 1 })

	ctx := testCtx(t)
	c := dialTest(t, a.Addr(), "bob")
	const n = 4
	batch := make([]BatchPub, n)
	for i := range batch {
		batch[i] = BatchPub{PubID: fmt.Sprintf("q%d", i), Pub: subscription.NewPublication(int64(i), int64(i))}
	}
	if err := c.PublishBatch(ctx, batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		select {
		case msg := <-frames:
			if msg.Kind != broker.MsgPublish || msg.PubID != fmt.Sprintf("q%d", i) {
				t.Fatalf("frame %d = %v %s, want per-item publish of q%d", i, msg.Kind, msg.PubID, i)
			}
		case err := <-fail:
			t.Fatal(err)
		case <-time.After(5 * time.Second):
			t.Fatalf("v1 peer received %d of %d split frames", i, n)
		}
	}
}

// TestTCPClientPublishBatchSplitForV1Broker is the client-side mirror:
// a broker that acked only binary v1 receives Client.PublishBatch as
// per-item publish frames.
func TestTCPClientPublishBatchSplitForV1Broker(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	frames := make(chan broker.Message, 16)
	fail := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			fail <- err
			return
		}
		defer conn.Close()
		r := newFrameReader(conn)
		var fr Frame
		if err := r.read(&fr); err != nil || fr.Hello != "alice" || !fr.Client {
			fail <- fmt.Errorf("bad hello %+v: %v", fr, err)
			return
		}
		if err := writeJSONFrame(conn, &Frame{Ack: "B", Codec: uint8(CodecBinary)}); err != nil {
			fail <- err
			return
		}
		for {
			if err := r.read(&fr); err != nil {
				return
			}
			if fr.Msg == nil {
				continue
			}
			if fr.Msg.Kind > broker.MsgUnsubscribeBatch {
				fail <- fmt.Errorf("v1 broker received kind %v", fr.Msg.Kind)
				return
			}
			frames <- *fr.Msg
		}
	}()

	c, err := Dial(testCtx(t), ln.Addr().String(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.PublishBatch(testCtx(t), []BatchPub{
		{PubID: "q0", Pub: subscription.NewPublication(1, 1)},
		{PubID: "q1", Pub: subscription.NewPublication(2, 2)},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case msg := <-frames:
			if msg.Kind != broker.MsgPublish || msg.PubID != fmt.Sprintf("q%d", i) {
				t.Fatalf("frame %d = %v %s", i, msg.Kind, msg.PubID)
			}
		case err := <-fail:
			t.Fatal(err)
		case <-time.After(5 * time.Second):
			t.Fatal("v1 broker did not receive split publishes")
		}
	}
}

// TestSimPublishBatch pins Client.PublishBatch on the simulated
// transport: one batch message, every publication delivered.
func TestSimPublishBatch(t *testing.T) {
	tr, err := NewSimTransport(Pairwise, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	defer tr.Shutdown(ctx)
	if _, err := tr.AddBroker("B1"); err != nil {
		t.Fatal(err)
	}
	sub, err := tr.Open(ctx, "alice", "B1")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := tr.Open(ctx, "bob", "B1")
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Subscribe(ctx, "s1", box(0, 100, 0, 100)); err != nil {
		t.Fatal(err)
	}
	if err := pub.PublishBatch(ctx, []BatchPub{
		{PubID: "p0", Pub: subscription.NewPublication(1, 1)},
		{PubID: "p1", Pub: subscription.NewPublication(2, 2)},
		{PubID: "p2", Pub: subscription.NewPublication(3, 3)},
	}); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for i := 0; i < 3; i++ {
		n, ok := recvOne(t, sub, 2*time.Second)
		if !ok {
			t.Fatalf("sim notification %d missing", i)
		}
		got[n.PubID] = true
	}
	if !got["p0"] || !got["p1"] || !got["p2"] {
		t.Fatalf("sim deliveries = %v", got)
	}
}
