// Command subsume answers group-subsumption questions from the
// command line and renders the conflict table, mirroring the paper's
// worked examples.
//
// Usage:
//
//	subsume -demo cover      # Table 3/5: covered example
//	subsume -demo noncover   # Table 6: polyhedron witness
//	subsume -demo mcs        # Table 7/8: conflict-free entries & MCS
//
//	echo '{"s":{"x1":[830,870],"x2":[1003,1006]},
//	       "set":[{"x1":[820,850],"x2":[1001,1007]},
//	              {"x1":[840,880],"x2":[1002,1009]}],
//	       "schema":[{"name":"x1","lo":0,"hi":10000},
//	                 {"name":"x2","lo":0,"hi":10000}]}' | subsume -stdin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"probsum/internal/conflict"
	"probsum/internal/core"
	"probsum/internal/interval"
	"probsum/internal/subscription"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "subsume: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		demo  = flag.String("demo", "", "run a built-in paper example: cover | noncover | mcs")
		stdin = flag.Bool("stdin", false, "read a JSON problem from stdin")
		delta = flag.Float64("delta", 1e-6, "acceptable error probability for a probabilistic YES")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var s subscription.Subscription
	var set []subscription.Subscription
	switch {
	case *demo != "":
		var err error
		s, set, err = demoProblem(*demo)
		if err != nil {
			return err
		}
	case *stdin:
		var err error
		s, set, err = readProblem(os.Stdin)
		if err != nil {
			return err
		}
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -demo or -stdin")
	}

	tbl, err := conflict.Build(s, set)
	if err != nil {
		return err
	}
	fmt.Println("conflict table:")
	fmt.Print(tbl.String())

	checker, err := core.NewChecker(
		core.WithErrorProbability(*delta),
		core.WithSeed(*seed, *seed^0x5eed),
	)
	if err != nil {
		return err
	}
	res, err := checker.Covered(s, set)
	if err != nil {
		return err
	}
	fmt.Printf("\ndecision: %s (reason: %s)\n", res.Decision, res.Reason)
	switch res.Reason {
	case core.ReasonPairwiseCover:
		fmt.Printf("covered by subscription #%d alone (Corollary 1)\n", res.CoveringRow+1)
	case core.ReasonPolyhedronWitness:
		fmt.Printf("polyhedron witness: %v (Corollary 3)\n", res.PolyhedronWitness)
	case core.ReasonPointWitness:
		fmt.Printf("point witness: %v\n", res.PointWitness)
	case core.ReasonEmptyMCS:
		fmt.Println("minimized cover set is empty: nothing can jointly cover s")
	case core.ReasonTrialsExhausted:
		fmt.Printf("no witness in %d trials; error probability <= %g\n", res.ExecutedTrials, *delta)
		fmt.Printf("reduced set after MCS: %d of %d subscriptions\n", len(res.ReducedSet), len(set))
	}
	return nil
}

// demoProblem returns the paper's worked examples.
func demoProblem(name string) (subscription.Subscription, []subscription.Subscription, error) {
	box := func(l1, h1, l2, h2 int64) subscription.Subscription {
		return subscription.New(interval.New(l1, h1), interval.New(l2, h2))
	}
	switch name {
	case "cover": // Table 3 / Table 5
		return box(830, 870, 1003, 1006),
			[]subscription.Subscription{box(820, 850, 1001, 1007), box(840, 880, 1002, 1009)}, nil
	case "noncover": // Table 6
		return box(830, 890, 1003, 1006),
			[]subscription.Subscription{box(820, 850, 1002, 1009), box(840, 870, 1001, 1007)}, nil
	case "mcs": // Table 7 / Table 8
		return box(830, 870, 1003, 1006),
			[]subscription.Subscription{
				box(820, 850, 1001, 1007),
				box(840, 880, 1002, 1009),
				box(810, 890, 1004, 1005),
			}, nil
	default:
		return subscription.Subscription{}, nil, fmt.Errorf("unknown demo %q (want cover, noncover, or mcs)", name)
	}
}

// problemJSON is the stdin input format.
type problemJSON struct {
	Schema json.RawMessage   `json:"schema"`
	S      json.RawMessage   `json:"s"`
	Set    []json.RawMessage `json:"set"`
}

// readProblem decodes a schema, tested subscription, and set.
func readProblem(r io.Reader) (subscription.Subscription, []subscription.Subscription, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return subscription.Subscription{}, nil, err
	}
	var p problemJSON
	if err := json.Unmarshal(data, &p); err != nil {
		return subscription.Subscription{}, nil, fmt.Errorf("decode problem: %w", err)
	}
	schema, err := subscription.UnmarshalSchema(p.Schema)
	if err != nil {
		return subscription.Subscription{}, nil, err
	}
	s, err := subscription.UnmarshalSubscription(p.S, schema)
	if err != nil {
		return subscription.Subscription{}, nil, fmt.Errorf("decode s: %w", err)
	}
	set := make([]subscription.Subscription, len(p.Set))
	for i, raw := range p.Set {
		if set[i], err = subscription.UnmarshalSubscription(raw, schema); err != nil {
			return subscription.Subscription{}, nil, fmt.Errorf("decode set[%d]: %w", i, err)
		}
	}
	return s, set, nil
}
