// Command brokerd runs one content-based publish/subscribe broker
// over TCP — a thin wrapper over pubsub.ListenBroker and, when asked,
// the pubsub/cluster membership layer. Brokers form an overlay by
// dialing each other; clients connect with cmd/psclient.
//
// Three ways to form an overlay:
//
// Hand-wired (the original form — no membership, no self-healing):
//
//	brokerd -id B1 -listen :7001 -policy group
//	brokerd -id B2 -listen :7002 -peer B1=localhost:7001
//	brokerd -id B3 -listen :7003 -peer B2=localhost:7002
//
// Declarative topology (one JSON file shared by every daemon; see
// pubsub/cluster.Topology). Each daemon starts the broker declared
// under its -id; the cluster layer establishes the file's links in
// any boot order, detects dead peers by ping, re-dials them with
// jittered backoff, and re-announces the coverage roots as one
// SUBBATCH when a link heals:
//
//	brokerd -id B1 -cluster overlay.json
//	brokerd -id B2 -cluster overlay.json
//	brokerd -id B3 -cluster overlay.json
//
// Seed-node gossip (no file: name one or more running brokers and the
// member list — and a full-mesh overlay — assembles itself; the first
// broker runs -mesh so it gossips even though it has nobody to seed
// to):
//
//	brokerd -id B1 -listen 10.0.0.1:7001 -policy group -mesh
//	brokerd -id B2 -listen 10.0.0.2:7001 -seed-node B1=10.0.0.1:7001
//	brokerd -id B3 -listen 10.0.0.3:7001 -seed-node B1=10.0.0.1:7001
//
// Every -peer link is dialed outward; when -listen carries a concrete
// host (as above) the hello advertises it and the remote side dials
// the reverse direction back automatically. Daemons listening on a
// wildcard address (-listen :7001) cannot advertise a reachable
// address, so there each side must list the other as a -peer (and
// cluster topologies must declare concrete listen addresses).
//
// Frames travel the length-prefixed binary codec wherever both ends
// negotiated it in the hello/ack handshake and newline-delimited JSON
// otherwise; -codec json pins a daemon to the PR-3 format, -codec
// binary-v1 to the PR-4 vocabulary (no publish batches). Cluster
// control frames are only ever sent to peers that advertised the
// membership protocol — old daemons mix freely in the same overlay.
//
// With -data-dir the broker is durable: every state-changing arrival
// is appended to a CRC-framed journal in that directory (fsynced in
// batches of -journal-sync records) and compacted into a snapshot
// every -snapshot-interval. A broker restarted with the same -data-dir
// recovers its subscriptions, reverse paths, and dedup window from
// disk — clients do not re-subscribe — and the link-digest
// reconciliation protocol repairs whatever diverged from its peers
// while it was down:
//
//	brokerd -id B1 -cluster overlay.json -data-dir /var/lib/probsum/B1
//
// On SIGINT/SIGTERM the broker shuts down gracefully, draining
// in-flight frames for up to -drain and flushing a final snapshot
// before the data directory is closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"probsum/pubsub"
	"probsum/pubsub/cluster"
)

// peerList collects repeated NAME=ADDR flags (-peer, -seed).
type peerList map[string]string

func (p peerList) String() string { return fmt.Sprint(map[string]string(p)) }

func (p peerList) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok || name == "" || addr == "" {
		return fmt.Errorf("want NAME=ADDR, got %q", v)
	}
	p[name] = addr
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "brokerd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	peers := peerList{}
	seeds := peerList{}
	var (
		id          = flag.String("id", "", "broker identifier (required)")
		listen      = flag.String("listen", "127.0.0.1:7001", "listen address (ignored with -cluster: the topology declares it)")
		policyIn    = flag.String("policy", "group", "coverage policy: flood | pairwise | group (ignored with -cluster)")
		delta       = flag.Float64("delta", 1e-6, "group policy error probability")
		seed        = flag.Uint64("seed", 1, "group policy random seed")
		retries     = flag.Int("peer-retries", 10, "dial attempts per -peer link (1s apart)")
		drain       = flag.Duration("drain", 5*time.Second, "graceful shutdown drain budget")
		codecIn     = flag.String("codec", "binary", "wire codec cap: binary | binary-v1 (PR-4 compatible) | json (PR-3 compatible)")
		clusterFile = flag.String("cluster", "", "cluster topology file (JSON, see pubsub/cluster.Topology): membership, gossip, and self-healing links")
		mesh        = flag.Bool("mesh", false, "run the cluster layer with no seeds — the form for the FIRST broker of a seed-node cluster (later ones point -seed-node at it)")
		pingEvery   = flag.Duration("ping-interval", 500*time.Millisecond, "cluster failure-detector ping interval")
		dataDir     = flag.String("data-dir", "", "durable state directory: journal + snapshots; restart recovers from it (empty = in-memory only)")
		journalSync = flag.Int("journal-sync", 64, "fsync the journal every N records (1 = every record; needs -data-dir)")
		snapEvery   = flag.Duration("snapshot-interval", 30*time.Second, "journal compaction interval (needs -data-dir)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /metrics.json, and /flight on this HTTP address (empty = disabled)")
	)
	flag.Var(peers, "peer", "neighbor broker as NAME=ADDR (repeatable; static link, dialed outward)")
	flag.Var(seeds, "seed-node", "cluster seed broker as NAME=ADDR (repeatable): join by gossip, full-mesh overlay")
	flag.Parse()

	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	if *clusterFile != "" && (len(seeds) > 0 || *mesh) {
		return fmt.Errorf("-cluster and -seed-node/-mesh are mutually exclusive (a topology file already names every member)")
	}
	codec, err := pubsub.ParseWireCodec(*codecIn)
	if err != nil {
		return err
	}
	ccfg := cluster.Config{PingEvery: *pingEvery}
	opts := []pubsub.TCPOption{pubsub.WithWireCodec(codec)}
	if *dataDir != "" {
		opts = append(opts,
			pubsub.WithDataDir(*dataDir),
			pubsub.WithJournalSync(*journalSync),
			pubsub.WithSnapshotInterval(*snapEvery))
	}

	var (
		b    *pubsub.Broker
		node *cluster.Node
	)
	switch {
	case *clusterFile != "":
		topo, err := cluster.LoadTopology(*clusterFile)
		if err != nil {
			return err
		}
		node, b, err = cluster.Start(topo, *id, ccfg, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("brokerd %s listening on %s (topology %s, %d members, codec %s)\n",
			*id, b.Addr(), *clusterFile, len(topo.Nodes), codec)
	case len(seeds) > 0 || *mesh:
		policy, err := pubsub.ParsePolicy(*policyIn)
		if err != nil {
			return err
		}
		node, b, err = cluster.Join(*id, *listen, seeds, policy, pubsub.Config{
			ErrorProbability: *delta,
			Seed:             *seed,
		}, ccfg, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("brokerd %s listening on %s (policy %s, codec %s, joining via %v)\n",
			*id, b.Addr(), policy, codec, map[string]string(seeds))
	default:
		policy, err := pubsub.ParsePolicy(*policyIn)
		if err != nil {
			return err
		}
		b, err = pubsub.ListenBroker(*id, *listen, policy, pubsub.Config{
			ErrorProbability: *delta,
			Seed:             *seed,
		}, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("brokerd %s listening on %s (policy %s, codec %s)\n", *id, b.Addr(), policy, codec)
	}

	if rs, ok := b.Recovery(); ok {
		fmt.Printf("recovered from %s: %d subscriptions, %d clients, %d neighbors, %d members (%d snapshot ops, %d journal records, %d skipped",
			*dataDir, rs.Subscriptions, rs.Clients, rs.Neighbors, len(rs.Members), rs.SnapshotOps, rs.JournalRecords, rs.Skipped)
		if rs.Truncated {
			fmt.Printf(", torn tail of %d bytes discarded", rs.DroppedBytes)
		}
		fmt.Println(")")
		// Durable membership: a hand-wired broker (no -cluster /
		// -seed-node / -mesh this boot) that persisted a member list in
		// a previous life rejoins that overlay from disk — the cluster
		// layer adopts the recorded members and its reconnect loop
		// re-dials them, no seed node needed.
		if node == nil && len(rs.Members) > 0 {
			ccfg.Mesh = true
			node = cluster.Attach(b, ccfg)
			fmt.Printf("rejoining cluster from disk: %d recovered members\n", len(rs.Members))
		}
	}

	for name, addr := range peers {
		if err := dialWithRetry(b, name, addr, *retries); err != nil {
			return err
		}
		fmt.Printf("connected peer %s at %s\n", name, addr)
	}

	if *metricsAddr != "" {
		reg := b.Observability()
		if reg == nil {
			return fmt.Errorf("-metrics-addr: this transport exposes no metrics registry")
		}
		if node != nil {
			node.RegisterObservability(reg)
		}
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		msrv := &http.Server{Handler: reg.Handler()}
		go msrv.Serve(ln)
		defer msrv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if node != nil {
		fmt.Printf("membership at shutdown: %s\n", node)
		node.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	return b.Shutdown(ctx)
}

// dialWithRetry keeps trying so daemons can start in any order.
func dialWithRetry(b *pubsub.Broker, name, addr string, attempts int) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = b.ConnectPeer(name, addr); err == nil {
			return nil
		}
		time.Sleep(time.Second)
	}
	return fmt.Errorf("peer %s at %s unreachable: %w", name, addr, err)
}
