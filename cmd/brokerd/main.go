// Command brokerd runs one content-based publish/subscribe broker
// over TCP — a thin wrapper over pubsub.ListenBroker. Brokers form an
// overlay by dialing each other; clients connect with cmd/psclient.
//
// Usage (three-broker chain):
//
//	brokerd -id B1 -listen :7001 -policy group
//	brokerd -id B2 -listen :7002 -peer B1=localhost:7001
//	brokerd -id B3 -listen :7003 -peer B2=localhost:7002
//
// Every -peer link is dialed outward; when -listen carries a concrete
// host (as above) the hello advertises it and the remote side dials
// the reverse direction back automatically. Daemons listening on a
// wildcard address (-listen :7001) cannot advertise a reachable
// address, so there each side must list the other as a -peer.
//
// Frames travel the length-prefixed binary codec wherever both ends
// negotiated it in the hello/ack handshake and newline-delimited JSON
// otherwise; -codec json pins a daemon to the old format (it still
// DECODES binary-capable peers' JSON — old and new daemons mix
// freely in one overlay).
//
// On SIGINT/SIGTERM the broker shuts down gracefully, draining
// in-flight frames for up to -drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"probsum/pubsub"
)

// peerList collects repeated -peer NAME=ADDR flags.
type peerList map[string]string

func (p peerList) String() string { return fmt.Sprint(map[string]string(p)) }

func (p peerList) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok || name == "" || addr == "" {
		return fmt.Errorf("want NAME=ADDR, got %q", v)
	}
	p[name] = addr
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "brokerd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	peers := peerList{}
	var (
		id       = flag.String("id", "", "broker identifier (required)")
		listen   = flag.String("listen", "127.0.0.1:7001", "listen address")
		policyIn = flag.String("policy", "group", "coverage policy: flood | pairwise | group")
		delta    = flag.Float64("delta", 1e-6, "group policy error probability")
		seed     = flag.Uint64("seed", 1, "group policy random seed")
		retries  = flag.Int("peer-retries", 10, "dial attempts per peer (1s apart)")
		drain    = flag.Duration("drain", 5*time.Second, "graceful shutdown drain budget")
		codecIn  = flag.String("codec", "binary", "wire codec cap: binary (negotiated per peer) | json (PR-3 compatible)")
	)
	flag.Var(peers, "peer", "neighbor broker as NAME=ADDR (repeatable)")
	flag.Parse()

	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	policy, err := pubsub.ParsePolicy(*policyIn)
	if err != nil {
		return err
	}

	codec, err := pubsub.ParseWireCodec(*codecIn)
	if err != nil {
		return err
	}

	b, err := pubsub.ListenBroker(*id, *listen, policy, pubsub.Config{
		ErrorProbability: *delta,
		Seed:             *seed,
	}, pubsub.WithWireCodec(codec))
	if err != nil {
		return err
	}
	fmt.Printf("brokerd %s listening on %s (policy %s, codec %s)\n", *id, b.Addr(), policy, codec)

	for name, addr := range peers {
		if err := dialWithRetry(b, name, addr, *retries); err != nil {
			return err
		}
		fmt.Printf("connected peer %s at %s\n", name, addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	return b.Shutdown(ctx)
}

// dialWithRetry keeps trying so daemons can start in any order.
func dialWithRetry(b *pubsub.Broker, name, addr string, attempts int) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = b.ConnectPeer(name, addr); err == nil {
			return nil
		}
		time.Sleep(time.Second)
	}
	return fmt.Errorf("peer %s at %s unreachable: %w", name, addr, err)
}
