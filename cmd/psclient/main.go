// Command psclient is a publish/subscribe client for brokerd — a thin
// wrapper over pubsub.Dial.
//
// Usage:
//
//	# subscribe and stream notifications (Ctrl-C to stop)
//	psclient -broker localhost:7001 -name alice \
//	         -subscribe '{"x1":[0,500]}' \
//	         -schema '[{"name":"x1","lo":0,"hi":10000},{"name":"x2","lo":0,"hi":10000}]'
//
//	# a burst: repeated -subscribe flags travel as ONE SUBBATCH frame
//	# and are admitted by the broker as one batch
//	psclient -broker localhost:7001 -name alice \
//	         -subscribe '{"x1":[0,500]}' -subscribe '{"x1":[100,200]}' -schema '...'
//
//	# publish one event
//	psclient -broker localhost:7002 -name bob \
//	         -publish '{"x1":42,"x2":7}' -schema '...'
//
// Frames use the binary wire codec once the broker's ack advertises
// it; -codec json pins the client to the PR-3 JSON format.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"probsum/pubsub"
	"probsum/subsume"
)

// jsonList collects repeated -subscribe flags.
type jsonList []string

func (l *jsonList) String() string { return fmt.Sprint([]string(*l)) }

func (l *jsonList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "psclient: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var subsIn jsonList
	var (
		brokerAddr = flag.String("broker", "127.0.0.1:7001", "broker address")
		name       = flag.String("name", "", "client name (required, unique per broker)")
		schemaIn   = flag.String("schema", "", "schema JSON (required)")
		pubIn      = flag.String("publish", "", "publication JSON: publish once and exit")
		subID      = flag.String("sub-id", "", "subscription id prefix (default <name>/1..N)")
		pubID      = flag.String("pub-id", "", "publication id (default <name>/p1)")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-operation deadline")
		codecIn    = flag.String("codec", "binary", "wire codec cap: binary (negotiated) | json (PR-3 compatible)")
	)
	flag.Var(&subsIn, "subscribe", "subscription JSON: stream notifications until interrupted (repeatable; several travel as one batch frame)")
	flag.Parse()

	if *name == "" {
		return fmt.Errorf("-name is required")
	}
	if *schemaIn == "" {
		return fmt.Errorf("-schema is required")
	}
	schema, err := subsume.UnmarshalSchema([]byte(*schemaIn))
	if err != nil {
		return err
	}
	codec, err := pubsub.ParseWireCodec(*codecIn)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	client, err := pubsub.Dial(ctx, *brokerAddr, *name, pubsub.WithDialCodec(codec))
	cancel()
	if err != nil {
		return err
	}
	defer client.Close()

	opCtx := func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(context.Background(), *timeout)
	}

	switch {
	case len(subsIn) > 0:
		batch := make([]pubsub.BatchSub, len(subsIn))
		for i, in := range subsIn {
			sub, err := subsume.UnmarshalSubscription([]byte(in), schema)
			if err != nil {
				return fmt.Errorf("subscription %d: %w", i+1, err)
			}
			id := fmt.Sprintf("%s/%d", *name, i+1)
			if *subID != "" {
				if len(subsIn) == 1 {
					id = *subID
				} else {
					id = fmt.Sprintf("%s/%d", *subID, i+1)
				}
			}
			batch[i] = pubsub.BatchSub{SubID: id, Sub: sub}
		}
		ctx, cancel := opCtx()
		if len(batch) == 1 {
			err = client.Subscribe(ctx, batch[0].SubID, batch[0].Sub)
		} else {
			// A burst travels as one SUBBATCH frame and is admitted by
			// the broker's coverage tables as one batch.
			err = client.SubscribeBatch(ctx, batch)
		}
		cancel()
		if err != nil {
			return err
		}
		for _, it := range batch {
			fmt.Printf("subscribed as %s: %v\n", it.SubID, it.Sub)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		for {
			select {
			case n, ok := <-client.Notifications():
				if !ok {
					return fmt.Errorf("connection closed")
				}
				fmt.Printf("notify %s: %v (matched %s)\n", n.PubID, n.Pub, n.SubID)
			case <-sig:
				return nil
			}
		}
	case *pubIn != "":
		pub, err := subsume.UnmarshalPublication([]byte(*pubIn), schema)
		if err != nil {
			return err
		}
		id := *pubID
		if id == "" {
			id = *name + "/p1"
		}
		ctx, cancel := opCtx()
		err = client.Publish(ctx, id, pub)
		cancel()
		if err != nil {
			return err
		}
		fmt.Printf("published %s: %v\n", id, pub)
		return nil
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -subscribe or -publish")
	}
}
