// Command psclient is a publish/subscribe client for brokerd — a thin
// wrapper over pubsub.Dial.
//
// Usage:
//
//	# subscribe and stream notifications (Ctrl-C to stop)
//	psclient -broker localhost:7001 -name alice \
//	         -subscribe '{"x1":[0,500]}' \
//	         -schema '[{"name":"x1","lo":0,"hi":10000},{"name":"x2","lo":0,"hi":10000}]'
//
//	# a burst: repeated -subscribe flags travel as ONE SUBBATCH frame
//	# and are admitted by the broker as one batch
//	psclient -broker localhost:7001 -name alice \
//	         -subscribe '{"x1":[0,500]}' -subscribe '{"x1":[100,200]}' -schema '...'
//
//	# publish one event
//	psclient -broker localhost:7002 -name bob \
//	         -publish '{"x1":42,"x2":7}' -schema '...'
//
//	# self-probe latency: subscribe, publish -count probes that match,
//	# and print the publish-to-notify latency histogram
//	psclient -broker localhost:7001 -name probe -stats -count 50 \
//	         -subscribe '{"x1":[0,500]}' -publish '{"x1":42,"x2":7}' -schema '...'
//
// Frames use the binary wire codec once the broker's ack advertises
// it; -codec json pins the client to the PR-3 JSON format.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"probsum/internal/obs"
	"probsum/pubsub"
	"probsum/subsume"
)

// jsonList collects repeated -subscribe flags.
type jsonList []string

func (l *jsonList) String() string { return fmt.Sprint([]string(*l)) }

func (l *jsonList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "psclient: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var subsIn jsonList
	var (
		brokerAddr = flag.String("broker", "127.0.0.1:7001", "broker address")
		name       = flag.String("name", "", "client name (required, unique per broker)")
		schemaIn   = flag.String("schema", "", "schema JSON (required)")
		pubIn      = flag.String("publish", "", "publication JSON: publish once and exit")
		subID      = flag.String("sub-id", "", "subscription id prefix (default <name>/1..N)")
		pubID      = flag.String("pub-id", "", "publication id (default <name>/p1)")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-operation deadline")
		codecIn    = flag.String("codec", "binary", "wire codec cap: binary (negotiated) | json (PR-3 compatible)")
		stats      = flag.Bool("stats", false, "self-probe latency mode: subscribe, publish -count probes matching the subscription, print the publish-to-notify latency histogram")
		count      = flag.Int("count", 20, "probe publications to send in -stats mode")
	)
	flag.Var(&subsIn, "subscribe", "subscription JSON: stream notifications until interrupted (repeatable; several travel as one batch frame)")
	flag.Parse()

	if *name == "" {
		return fmt.Errorf("-name is required")
	}
	if *schemaIn == "" {
		return fmt.Errorf("-schema is required")
	}
	schema, err := subsume.UnmarshalSchema([]byte(*schemaIn))
	if err != nil {
		return err
	}
	codec, err := pubsub.ParseWireCodec(*codecIn)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	client, err := pubsub.Dial(ctx, *brokerAddr, *name, pubsub.WithDialCodec(codec))
	cancel()
	if err != nil {
		return err
	}
	defer client.Close()

	opCtx := func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(context.Background(), *timeout)
	}

	switch {
	case *stats:
		// The broker never notifies a publication's own source port, so
		// the self-probe publishes through a second connection.
		ctx, cancel := opCtx()
		pubClient, err := pubsub.Dial(ctx, *brokerAddr, *name+"-pub", pubsub.WithDialCodec(codec))
		cancel()
		if err != nil {
			return err
		}
		defer pubClient.Close()
		return runStats(client, pubClient, schema, subsIn, *pubIn, *name, *count, opCtx)
	case len(subsIn) > 0:
		batch := make([]pubsub.BatchSub, len(subsIn))
		for i, in := range subsIn {
			sub, err := subsume.UnmarshalSubscription([]byte(in), schema)
			if err != nil {
				return fmt.Errorf("subscription %d: %w", i+1, err)
			}
			id := fmt.Sprintf("%s/%d", *name, i+1)
			if *subID != "" {
				if len(subsIn) == 1 {
					id = *subID
				} else {
					id = fmt.Sprintf("%s/%d", *subID, i+1)
				}
			}
			batch[i] = pubsub.BatchSub{SubID: id, Sub: sub}
		}
		ctx, cancel := opCtx()
		if len(batch) == 1 {
			err = client.Subscribe(ctx, batch[0].SubID, batch[0].Sub)
		} else {
			// A burst travels as one SUBBATCH frame and is admitted by
			// the broker's coverage tables as one batch.
			err = client.SubscribeBatch(ctx, batch)
		}
		cancel()
		if err != nil {
			return err
		}
		for _, it := range batch {
			fmt.Printf("subscribed as %s: %v\n", it.SubID, it.Sub)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		for {
			select {
			case n, ok := <-client.Notifications():
				if !ok {
					return fmt.Errorf("connection closed")
				}
				fmt.Printf("notify %s: %v (matched %s)\n", n.PubID, n.Pub, n.SubID)
			case <-sig:
				return nil
			}
		}
	case *pubIn != "":
		pub, err := subsume.UnmarshalPublication([]byte(*pubIn), schema)
		if err != nil {
			return err
		}
		id := *pubID
		if id == "" {
			id = *name + "/p1"
		}
		ctx, cancel := opCtx()
		err = client.Publish(ctx, id, pub)
		cancel()
		if err != nil {
			return err
		}
		fmt.Printf("published %s: %v\n", id, pub)
		return nil
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -subscribe or -publish")
	}
}

// runStats is the -stats self-probe loop: the subscribing connection
// installs the probe subscription, the publishing connection sends
// probe events that match it, and every delivery resolves against its
// publish stamp in a shared ClientStats — the same histogram code the
// broker registry uses — which is printed as a latency profile on
// exit.
func runStats(subClient, pubClient *pubsub.Client, schema *subsume.Schema, subsIn jsonList, pubIn, name string, count int,
	opCtx func() (context.Context, context.CancelFunc)) error {
	if len(subsIn) == 0 || pubIn == "" {
		return fmt.Errorf("-stats needs both -subscribe (the probe target) and -publish (the probe event)")
	}
	sub, err := subsume.UnmarshalSubscription([]byte(subsIn[0]), schema)
	if err != nil {
		return err
	}
	pub, err := subsume.UnmarshalPublication([]byte(pubIn), schema)
	if err != nil {
		return err
	}
	cs := pubsub.NewClientStats()
	subClient.SetStats(cs)
	pubClient.SetStats(cs)

	ctx, cancel := opCtx()
	err = subClient.Subscribe(ctx, name+"/probe", sub)
	cancel()
	if err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		ctx, cancel := opCtx()
		err := pubClient.Publish(ctx, fmt.Sprintf("%s/p%d", name, i+1), pub)
		cancel()
		if err != nil {
			return err
		}
		// Drain until this probe's notification arrives so probes do not
		// queue behind each other and inflate the measurement.
		for cs.Pending() > 0 {
			if _, ok := <-subClient.Notifications(); !ok {
				return fmt.Errorf("connection closed after %d probes", i)
			}
		}
	}
	printHistogram(cs.Snapshot(), count)
	return nil
}

// printHistogram renders one latency profile: headline quantiles plus
// the populated log2 buckets.
func printHistogram(s obs.HistSnapshot, probes int) {
	fmt.Printf("publish-to-notify latency over %d probes (%d measured):\n", probes, s.Count)
	fmt.Printf("  mean %v  p50 %v  p99 %v  max %v\n",
		time.Duration(s.MeanNs()), time.Duration(s.Quantile(0.50)),
		time.Duration(s.Quantile(0.99)), time.Duration(s.MaxNs))
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		fmt.Printf("  <= %12v  %d\n", time.Duration(obs.BucketUpperNs(i)), n)
	}
}
