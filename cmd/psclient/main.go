// Command psclient is a publish/subscribe client for brokerd — a thin
// wrapper over pubsub.Dial.
//
// Usage:
//
//	# subscribe and stream notifications (Ctrl-C to stop)
//	psclient -broker localhost:7001 -name alice \
//	         -subscribe '{"x1":[0,500]}' \
//	         -schema '[{"name":"x1","lo":0,"hi":10000},{"name":"x2","lo":0,"hi":10000}]'
//
//	# publish one event
//	psclient -broker localhost:7002 -name bob \
//	         -publish '{"x1":42,"x2":7}' -schema '...'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"probsum/pubsub"
	"probsum/subsume"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "psclient: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		brokerAddr = flag.String("broker", "127.0.0.1:7001", "broker address")
		name       = flag.String("name", "", "client name (required, unique per broker)")
		schemaIn   = flag.String("schema", "", "schema JSON (required)")
		subIn      = flag.String("subscribe", "", "subscription JSON: stream notifications until interrupted")
		pubIn      = flag.String("publish", "", "publication JSON: publish once and exit")
		subID      = flag.String("sub-id", "", "subscription id (default <name>/1)")
		pubID      = flag.String("pub-id", "", "publication id (default <name>/p1)")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-operation deadline")
	)
	flag.Parse()

	if *name == "" {
		return fmt.Errorf("-name is required")
	}
	if *schemaIn == "" {
		return fmt.Errorf("-schema is required")
	}
	schema, err := subsume.UnmarshalSchema([]byte(*schemaIn))
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	client, err := pubsub.Dial(ctx, *brokerAddr, *name)
	cancel()
	if err != nil {
		return err
	}
	defer client.Close()

	opCtx := func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(context.Background(), *timeout)
	}

	switch {
	case *subIn != "":
		sub, err := subsume.UnmarshalSubscription([]byte(*subIn), schema)
		if err != nil {
			return err
		}
		id := *subID
		if id == "" {
			id = *name + "/1"
		}
		ctx, cancel := opCtx()
		err = client.Subscribe(ctx, id, sub)
		cancel()
		if err != nil {
			return err
		}
		fmt.Printf("subscribed as %s: %v\n", id, sub)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		for {
			select {
			case n, ok := <-client.Notifications():
				if !ok {
					return fmt.Errorf("connection closed")
				}
				fmt.Printf("notify %s: %v (matched %s)\n", n.PubID, n.Pub, n.SubID)
			case <-sig:
				return nil
			}
		}
	case *pubIn != "":
		pub, err := subsume.UnmarshalPublication([]byte(*pubIn), schema)
		if err != nil {
			return err
		}
		id := *pubID
		if id == "" {
			id = *name + "/p1"
		}
		ctx, cancel := opCtx()
		err = client.Publish(ctx, id, pub)
		cancel()
		if err != nil {
			return err
		}
		fmt.Printf("published %s: %v\n", id, pub)
		return nil
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -subscribe or -publish")
	}
}
