// Command brokervet runs the repo's invariant analyzers (lockcheck,
// clockcheck, wirecheck, journalcheck — see internal/analysis) over
// Go packages. It needs nothing beyond the go toolchain and speaks
// two protocols:
//
//	go run ./cmd/brokervet ./...          # standalone, like staticcheck
//	go vet -vettool=$(which brokervet) ./...  # cmd/go vet tool protocol
//
// Standalone mode loads packages via `go list -export` and prints
// findings as file:line:col: message (analyzer); exit status 2 means
// findings, 1 means the tool itself failed. In vettool mode cmd/go
// invokes the binary once per package with a JSON .cfg file (and with
// -V=full / -flags probes), which is handled below without x/tools'
// unitchecker.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"probsum/internal/analysis"
	"probsum/internal/analysis/brokervet"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// The tool takes no analyzer flags; cmd/go probes for them.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runVettool(args[0]))
	default:
		os.Exit(runStandalone(args))
	}
}

// printVersion implements the `-V=full` probe: one stable line that
// cmd/go folds into its build cache key for vet results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:16])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

// runStandalone loads the pattern-matched packages from the current
// directory and applies the suite.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "brokervet: %v\n", err)
		return 1
	}
	findings, err := analysis.RunAnalyzers(pkgs, brokervet.Suite())
	if err != nil {
		fmt.Fprintf(os.Stderr, "brokervet: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the configuration cmd/go writes for each package when
// driving a vet tool (see cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "brokervet: reading %s: %v\n", cfgPath, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "brokervet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// brokervet exports no facts, but cmd/go expects the output file
	// of every vet run to exist so it can cache it.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("brokervet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "brokervet: writing vetx: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "brokervet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "brokervet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	exit := 0
	for _, a := range brokervet.Suite() {
		pass := &analysis.Pass{
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
		}
		diags, err := analysis.RunOnPass(a, pass)
		if err != nil {
			fmt.Fprintf(os.Stderr, "brokervet: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, a.Name)
			exit = 2
		}
	}
	return exit
}
