// Command paperbench regenerates every table and figure of the
// paper's evaluation (Section 6) plus the Section 5 Equation 2
// analysis. Results print as ASCII tables and can optionally be saved
// as CSV files.
//
// Usage:
//
//	paperbench -all                 # every experiment at paper scale
//	paperbench -run fig6,fig12     # selected experiments
//	paperbench -scale 0.1 -all     # 10% of the paper's run counts
//	paperbench -all -csv out/      # also write out/<id>.csv
//	paperbench -benchjson .        # write BENCH_<date>.json with
//	                                # ns/op + allocs/op of the hot path
//	paperbench -benchjson /tmp -baseline BENCH_2026-07-29.json
//	                                # …and fail if the covered-path or
//	                                # subscribe benchmarks regressed >30%
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"probsum/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		runIDs    = flag.String("run", "", "comma-separated experiment ids (see -list)")
		scale     = flag.Float64("scale", 1.0, "fraction of the paper's run counts (speed/precision trade-off)")
		csvDir    = flag.String("csv", "", "directory to write <id>.csv files into")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		benchJSON = flag.String("benchjson", "", "directory to write BENCH_<date>.json micro-benchmark results into")
		baseline  = flag.String("baseline", "", "committed BENCH_*.json to gate -benchjson results against")
		regress   = flag.Float64("regress", 0.30, "max allowed ns/op regression vs -baseline (0.30 = +30%)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	if *benchJSON != "" {
		path, report, err := runBenchJSON(*benchJSON)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		if *baseline != "" {
			if err := checkRegressions(report, *baseline, *regress); err != nil {
				return err
			}
			fmt.Printf("no regressions beyond %+.0f%% vs %s\n", 100**regress, *baseline)
		}
		if !*all && *runIDs == "" {
			return nil
		}
	}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *runIDs != "":
		for _, id := range strings.Split(*runIDs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -all or -run")
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("create csv dir: %w", err)
		}
	}

	for _, id := range ids {
		start := time.Now()
		tbl, err := experiments.Run(id, experiments.Scale(*scale))
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, id+".csv"))
			if err != nil {
				return fmt.Errorf("%s: create csv: %w", id, err)
			}
			if err := tbl.WriteCSV(f); err != nil {
				f.Close()
				return fmt.Errorf("%s: write csv: %w", id, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("%s: close csv: %w", id, err)
			}
		}
	}
	return nil
}
