package main

// Machine-readable micro-benchmark output: paperbench -benchjson DIR
// runs the hot-path micro-benchmarks via testing.Benchmark and writes
// BENCH_<date>.json, giving future changes a perf trajectory to diff
// against without parsing `go test -bench` text.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"probsum/internal/benchcases"
	"probsum/internal/conflict"
	"probsum/internal/core"
	"probsum/internal/store"
)

// BenchResult is one benchmark measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the file-level envelope.
type BenchReport struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// microBenchmarks is the hot-path set, with bodies shared with the
// repo's bench_test.go through internal/benchcases so trajectories
// line up with `go test -bench` output.
func microBenchmarks() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"ConflictTableBuild", func(b *testing.B) {
			in := benchcases.Instance("cover")
			var t conflict.Table
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := t.Reset(in.S, in.Set); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"MCS", func(b *testing.B) {
			in := benchcases.Instance("cover")
			tbl, err := conflict.Build(in.S, in.Set)
			if err != nil {
				b.Fatal(err)
			}
			alive := make([]bool, tbl.K())
			var an conflict.Analysis
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.MCSInto(tbl, alive, &an)
			}
		}},
		{"CoveredInto/covered", func(b *testing.B) { benchcases.CoveredInto(b, "cover") }},
		{"CoveredInto/noncover", func(b *testing.B) { benchcases.CoveredInto(b, "noncover") }},
		{"StoreSubscribe/pairwise", func(b *testing.B) {
			benchcases.StoreSubscribe(b, store.PolicyPairwise, true)
		}},
		{"StoreSubscribe/group", func(b *testing.B) {
			benchcases.StoreSubscribe(b, store.PolicyGroup, true)
		}},
		{"StoreSubscribe/pairwise-noprune", func(b *testing.B) {
			benchcases.StoreSubscribe(b, store.PolicyPairwise, false)
		}},
		{"StoreSubscribe/group-noprune", func(b *testing.B) {
			benchcases.StoreSubscribe(b, store.PolicyGroup, false)
		}},
	}
}

// runBenchJSON executes the micro-benchmarks and writes
// BENCH_<yyyy-mm-dd>.json into dir, returning the file path.
func runBenchJSON(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("create bench dir: %w", err)
	}
	report := BenchReport{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, bm := range microBenchmarks() {
		fmt.Fprintf(os.Stderr, "bench %-32s ", bm.name)
		r := testing.Benchmark(bm.fn)
		if r.N == 0 {
			fmt.Fprintln(os.Stderr, "FAILED")
			return "", fmt.Errorf("bench %s failed (body called b.Fatal)", bm.name)
		}
		res := BenchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(os.Stderr, "%12.1f ns/op %6d allocs/op\n", res.NsPerOp, res.AllocsPerOp)
		report.Benchmarks = append(report.Benchmarks, res)
	}
	path := filepath.Join(dir, "BENCH_"+time.Now().UTC().Format("2006-01-02")+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("create %s: %w", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return "", fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("close %s: %w", path, err)
	}
	return path, nil
}
