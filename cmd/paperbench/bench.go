package main

// Machine-readable micro-benchmark output: paperbench -benchjson DIR
// runs the hot-path micro-benchmarks via testing.Benchmark and writes
// BENCH_<date>.json, giving future changes a perf trajectory to diff
// against without parsing `go test -bench` text.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"probsum/internal/benchcases"
	"probsum/internal/conflict"
	"probsum/internal/core"
	"probsum/internal/obs"
	"probsum/internal/store"
	"probsum/pubsub"
	"probsum/pubsub/cluster/scale"
)

// BenchResult is one benchmark measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// BenchReport is the file-level envelope.
type BenchReport struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Calibration is the host-speed probe: ns/op of a fixed CPU-bound
	// workload (FNV-1a over 64 KiB) with no allocation, no syscalls,
	// and no concurrency. The regression gate divides each fresh
	// measurement by the calibration ratio fresh/baseline before
	// comparing, so a slower or faster host does not read as a code
	// regression (or mask one).
	Calibration float64       `json:"calibration_ns_per_op,omitempty"`
	Benchmarks  []BenchResult `json:"benchmarks"`
	// Scale tracks the membership-at-scale trajectory: deterministic
	// runs of the pubsub/cluster/scale harness (fixed seed, manual
	// clock), so convergence and gossip-traffic numbers diff across
	// commits like the micro-benchmarks do. Informational — the CI
	// regression gate for these lives in examples/scale.
	Scale []ScaleResult `json:"scale,omitempty"`
}

// ScaleResult is one membership scale-harness measurement, plus the
// routed-vs-flood content-layer comparison of the same size and seed.
type ScaleResult struct {
	N                         int     `json:"n"`
	Links                     int     `json:"links"`
	MaxDegree                 int     `json:"max_degree"`
	ConvergedRounds           int     `json:"converged_rounds"`
	SteadyBytesPerMemberRound float64 `json:"steady_bytes_per_member_round"`
	SteadyFullGossipFrames    uint64  `json:"steady_full_gossip_frames"`
	SteadyDeltaFrames         uint64  `json:"steady_delta_frames"`
	TotalControlBytes         uint64  `json:"total_control_bytes"`
	// Flood/RoutedSubFramesPerLink are the subscription-announcement
	// frames per directed overlay link each mode cost for the same
	// injected workload; runBenchJSON refuses to write a snapshot
	// where routed does not beat flood or the delivery sets diverge.
	FloodSubFramesPerLink  float64 `json:"flood_sub_frames_per_link"`
	RoutedSubFramesPerLink float64 `json:"routed_sub_frames_per_link"`
	// RoutedRouteEntries is the total routed coverage-table footprint;
	// Deliveries the (identical) notification count of both modes.
	RoutedRouteEntries int `json:"routed_route_entries"`
	Deliveries         int `json:"deliveries"`
}

// microBenchmarks is the hot-path set, with bodies shared with the
// repo's bench_test.go through internal/benchcases so trajectories
// line up with `go test -bench` output.
func microBenchmarks() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"ConflictTableBuild", func(b *testing.B) {
			in := benchcases.Instance("cover")
			var t conflict.Table
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := t.Reset(in.S, in.Set); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"MCS", func(b *testing.B) {
			in := benchcases.Instance("cover")
			tbl, err := conflict.Build(in.S, in.Set)
			if err != nil {
				b.Fatal(err)
			}
			alive := make([]bool, tbl.K())
			var an conflict.Analysis
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.MCSInto(tbl, alive, &an)
			}
		}},
		{"CoveredInto/covered", func(b *testing.B) { benchcases.CoveredInto(b, "cover") }},
		{"CoveredInto/noncover", func(b *testing.B) { benchcases.CoveredInto(b, "noncover") }},
		{"StoreSubscribe/pairwise", func(b *testing.B) {
			benchcases.StoreSubscribe(b, store.PolicyPairwise, true)
		}},
		{"StoreSubscribe/group", func(b *testing.B) {
			benchcases.StoreSubscribe(b, store.PolicyGroup, true)
		}},
		{"StoreSubscribe/pairwise-noprune", func(b *testing.B) {
			benchcases.StoreSubscribe(b, store.PolicyPairwise, false)
		}},
		{"StoreSubscribe/group-noprune", func(b *testing.B) {
			benchcases.StoreSubscribe(b, store.PolicyGroup, false)
		}},
		{"TableSubscribeBatch/peritem", func(b *testing.B) {
			benchcases.TableSubscribeBatch(b, false, 1)
		}},
		{"TableSubscribeBatch/batch", func(b *testing.B) {
			benchcases.TableSubscribeBatch(b, true, 1)
		}},
		{"TableSubscribeBatch/batch-4shards", func(b *testing.B) {
			benchcases.TableSubscribeBatch(b, true, 4)
		}},
		{"TableUnsubscribeBatch/peritem", func(b *testing.B) {
			benchcases.TableUnsubscribeBatch(b, false, 1)
		}},
		{"TableUnsubscribeBatch/batch", func(b *testing.B) {
			benchcases.TableUnsubscribeBatch(b, true, 1)
		}},
		{"WireCodec/pub-encode/json", func(b *testing.B) {
			benchcases.WireCodecEncode(b, pubsub.CodecJSON, "pub")
		}},
		{"WireCodec/pub-encode/binary", func(b *testing.B) {
			benchcases.WireCodecEncode(b, pubsub.CodecBinary, "pub")
		}},
		{"WireCodec/pub-decode/json", func(b *testing.B) {
			benchcases.WireCodecDecode(b, pubsub.CodecJSON, "pub")
		}},
		{"WireCodec/pub-decode/binary", func(b *testing.B) {
			benchcases.WireCodecDecode(b, pubsub.CodecBinary, "pub")
		}},
		{"WireCodec/subbatch-encode/binary", func(b *testing.B) {
			benchcases.WireCodecEncode(b, pubsub.CodecBinary, "subbatch")
		}},
		{"WireCodec/subbatch-decode/binary", func(b *testing.B) {
			benchcases.WireCodecDecode(b, pubsub.CodecBinary, "subbatch")
		}},
		// End-to-end wire benchmarks over real loopback sockets: json
		// is the PR-3 codec baseline the binary path must beat (the
		// ISSUE 4 acceptance bar); they are recorded in the snapshot
		// but stay outside the regression gate because wall clock over
		// sockets absorbs scheduler noise the 30% margin is not meant
		// to cover.
		{"TCPPublish/json", benchcases.TCPPublishJSON},
		{"TCPPublish/binary", benchcases.TCPPublishBinary},
		{"TCPPublish/pubbatch", benchcases.TCPPublishBatch},
		{"TCPSubscribeBurst/peritem", func(b *testing.B) {
			benchcases.TCPSubscribeBurst(b, false)
		}},
		{"TCPSubscribeBurst/batch", func(b *testing.B) {
			benchcases.TCPSubscribeBurst(b, true)
		}},
		// Observability primitives: the per-observation cost the
		// instrumented hot paths pay. allocs/op here must stay zero —
		// the same invariant internal/obs's alloc tests pin.
		{"ObsHistogramObserve", func(b *testing.B) {
			h := obs.NewHistogram()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Observe(time.Duration(i%4096) * time.Microsecond)
			}
		}},
		{"ObsLinkFrames", func(b *testing.B) {
			var ls obs.LinkStats
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ls.Sent(i % 16)
				ls.Recv(i % 16)
			}
		}},
	}
}

// benchSink defeats dead-code elimination in the calibration loop.
var benchSink uint64

// calibrate measures the host-speed probe (see BenchReport.Calibration).
func calibrate() float64 {
	buf := make([]byte, 64<<10)
	for i := range buf {
		buf[i] = byte(i * 131)
	}
	r := testing.Benchmark(func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			h := uint64(14695981039346656037)
			for _, c := range buf {
				h ^= uint64(c)
				h *= 1099511628211
			}
			sink ^= h
		}
		benchSink = sink
	})
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// regressionGated lists the benchmark-name prefixes the CI regression
// gate compares: the covered-path checker, the subscribe paths (store
// and Table), and the wire codec, per the perf-trajectory roadmap
// item. Figure benchmarks, ablations, and the socket-level TCP
// benchmarks stay informational.
var regressionGated = []string{"CoveredInto/", "StoreSubscribe/", "TableSubscribeBatch/", "TableUnsubscribeBatch/", "WireCodec/", "publish_notify_"}

// hostScale derives the normalization factor between a fresh report
// and its baseline from their calibration probes: > 1 means this host
// ran the fixed workload slower than the baseline host. Clamped to
// [0.25, 4.0] so a broken probe can neither hide a real regression
// behind a huge divisor nor invent one; missing calibration on either
// side (pre-calibration baselines) disables normalization.
func hostScale(report, base BenchReport) float64 {
	if report.Calibration <= 0 || base.Calibration <= 0 {
		return 1
	}
	scale := report.Calibration / base.Calibration
	return min(max(scale, 0.25), 4.0)
}

// checkRegressions compares a fresh report against a committed
// baseline file and errors when any gated benchmark's ns/op regressed
// by more than maxRegress (0.30 = +30%) after host-speed
// normalization. Benchmarks present on only one side are skipped, so
// adding or retiring benchmarks never breaks the gate.
func checkRegressions(report BenchReport, baselinePath string, maxRegress float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base BenchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	scale := hostScale(report, base)
	if scale != 1 {
		fmt.Fprintf(os.Stderr, "gate  host calibration %.1f vs baseline %.1f ns/op: normalizing by %.2fx\n",
			report.Calibration, base.Calibration, scale)
	}
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseNs[b.Name] = b.NsPerOp
	}
	gated := func(name string) bool {
		for _, p := range regressionGated {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	var failures []string
	for _, b := range report.Benchmarks {
		old, ok := baseNs[b.Name]
		if !ok || old <= 0 || !gated(b.Name) {
			continue
		}
		delta := (b.NsPerOp/scale)/old - 1
		fmt.Fprintf(os.Stderr, "gate  %-32s %12.1f -> %12.1f ns/op (%+.1f%% normalized)\n",
			b.Name, old, b.NsPerOp, 100*delta)
		if delta > maxRegress {
			failures = append(failures,
				fmt.Sprintf("%s: %.1f -> %.1f ns/op (%+.1f%% > %+.0f%%)",
					b.Name, old, b.NsPerOp, 100*delta, 100*maxRegress))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench regressions vs %s:\n  %s",
			baselinePath, strings.Join(failures, "\n  "))
	}
	return nil
}

// runBenchJSON executes the micro-benchmarks and writes
// BENCH_<yyyy-mm-dd>.json into dir, returning the file path and the
// report for regression gating.
func runBenchJSON(dir string) (string, BenchReport, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", BenchReport{}, fmt.Errorf("create bench dir: %w", err)
	}
	report := BenchReport{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	report.Calibration = calibrate()
	fmt.Fprintf(os.Stderr, "bench %-32s %12.1f ns/op (host-speed probe)\n", "Calibration", report.Calibration)
	for _, bm := range microBenchmarks() {
		fmt.Fprintf(os.Stderr, "bench %-32s ", bm.name)
		r := testing.Benchmark(bm.fn)
		if r.N == 0 {
			fmt.Fprintln(os.Stderr, "FAILED")
			return "", BenchReport{}, fmt.Errorf("bench %s failed (body called b.Fatal)", bm.name)
		}
		res := BenchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(os.Stderr, "%12.1f ns/op %6d allocs/op\n", res.NsPerOp, res.AllocsPerOp)
		report.Benchmarks = append(report.Benchmarks, res)
	}
	// End-to-end latency: the paper's user-visible number. Closed-loop
	// probes over two real TCP brokers, exact percentiles from
	// ClientStats raw samples; gated like the micro-benchmarks.
	{
		const warmup, probes = 50, 300
		fmt.Fprintf(os.Stderr, "bench %-32s ", "publish_notify")
		p50, p99, err := publishNotifyLatency(warmup, probes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "FAILED")
			return "", BenchReport{}, fmt.Errorf("publish-notify latency: %w", err)
		}
		fmt.Fprintf(os.Stderr, "p50 %12.1f ns  p99 %12.1f ns (%d probes)\n", p50, p99, probes)
		report.Benchmarks = append(report.Benchmarks,
			BenchResult{Name: "publish_notify_p50", Iterations: probes, NsPerOp: p50},
			BenchResult{Name: "publish_notify_p99", Iterations: probes, NsPerOp: p99},
		)
	}
	for _, n := range []int{200, 1000} {
		fmt.Fprintf(os.Stderr, "scale n=%-4d ", n)
		const subs, pubs = 100, 100
		flood, err := scale.Run(scale.Config{N: n, Seed: 1, Subs: subs, Pubs: pubs})
		if err != nil {
			fmt.Fprintln(os.Stderr, "FAILED")
			return "", BenchReport{}, fmt.Errorf("scale n=%d: %w", n, err)
		}
		routed, err := scale.Run(scale.Config{N: n, Seed: 1, Subs: subs, Pubs: pubs, Routed: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "FAILED")
			return "", BenchReport{}, fmt.Errorf("scale n=%d routed: %w", n, err)
		}
		// The routing gate: structured routing must beat flooding on
		// announcement traffic while delivering identically, or the
		// snapshot is refused.
		if routed.Deliveries != flood.Deliveries || routed.DeliveryHash != flood.DeliveryHash {
			return "", BenchReport{}, fmt.Errorf(
				"scale n=%d: routed deliveries diverge from flood oracle (%d/%#x vs %d/%#x)",
				n, routed.Deliveries, routed.DeliveryHash, flood.Deliveries, flood.DeliveryHash)
		}
		if routed.SubFramesPerLink >= flood.SubFramesPerLink {
			return "", BenchReport{}, fmt.Errorf(
				"scale n=%d: routed sub frames/link %.2f did not beat flood %.2f",
				n, routed.SubFramesPerLink, flood.SubFramesPerLink)
		}
		res := ScaleResult{
			N:                         flood.N,
			Links:                     flood.Links,
			MaxDegree:                 flood.MaxDegree,
			ConvergedRounds:           flood.ConvergedRound,
			SteadyBytesPerMemberRound: flood.SteadyBytesPerMemberRound,
			SteadyFullGossipFrames:    flood.SteadyFullGossipFrames,
			SteadyDeltaFrames:         flood.SteadyDeltaFrames,
			TotalControlBytes:         flood.TotalControlBytes,
			FloodSubFramesPerLink:     flood.SubFramesPerLink,
			RoutedSubFramesPerLink:    routed.SubFramesPerLink,
			RoutedRouteEntries:        routed.RouteEntries,
			Deliveries:                routed.Deliveries,
		}
		fmt.Fprintf(os.Stderr, "converged in %d rounds, %.0f B/member/round steady, sub frames/link %.2f flood vs %.2f routed\n",
			res.ConvergedRounds, res.SteadyBytesPerMemberRound, res.FloodSubFramesPerLink, res.RoutedSubFramesPerLink)
		report.Scale = append(report.Scale, res)
	}
	path := filepath.Join(dir, "BENCH_"+time.Now().UTC().Format("2006-01-02")+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", BenchReport{}, fmt.Errorf("create %s: %w", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return "", BenchReport{}, fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return "", BenchReport{}, fmt.Errorf("close %s: %w", path, err)
	}
	return path, report, nil
}
