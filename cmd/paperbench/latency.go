package main

// End-to-end publish-to-notify latency: a closed-loop run over two
// real TCP brokers, measured from the client's side with
// pubsub.ClientStats raw samples (the log2 histogram is too coarse
// for a 30% gate, so the percentiles come from the exact durations).
// The resulting publish_notify_p50/p99 entries are regression-gated
// in BENCH_*.json, normalized by the calibration loop.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"probsum/pubsub"
	"probsum/subsume"
)

// publishNotifyLatency runs warmup + probes closed-loop publishes
// through B1 while a full-range subscription listens on B2, and
// returns the exact p50/p99 publish-to-notify latencies in
// nanoseconds.
func publishNotifyLatency(warmup, probes int) (p50, p99 float64, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	tr, err := pubsub.NewTCPTransport(pubsub.Pairwise, pubsub.Config{})
	if err != nil {
		return 0, 0, err
	}
	defer tr.Shutdown(context.Background())
	if _, err := tr.AddBroker("B1"); err != nil {
		return 0, 0, err
	}
	if _, err := tr.AddBroker("B2"); err != nil {
		return 0, 0, err
	}
	if err := tr.Connect("B1", "B2"); err != nil {
		return 0, 0, err
	}
	schema := subsume.NewSchema(
		subsume.Attr("x1", 0, 100),
		subsume.Attr("x2", 0, 100),
	)
	sub, err := tr.Open(ctx, "S", "B2")
	if err != nil {
		return 0, 0, err
	}
	pub, err := tr.Open(ctx, "P", "B1")
	if err != nil {
		return 0, 0, err
	}
	s := subsume.NewSubscription(schema).Range("x1", 0, 100).Range("x2", 0, 100).Build()
	if err := sub.Subscribe(ctx, "s1", s); err != nil {
		return 0, 0, err
	}
	if err := tr.Settle(ctx); err != nil {
		return 0, 0, err
	}

	// One probe in flight at a time: each publish waits for its own
	// notification, so probes never queue behind each other and the
	// sample is pure per-event latency.
	event := subsume.NewPublication(50, 50)
	probe := func(id string) error {
		if err := pub.Publish(ctx, id, event); err != nil {
			return err
		}
		select {
		case _, ok := <-sub.Notifications():
			if !ok {
				return fmt.Errorf("notification stream closed")
			}
			return nil
		case <-ctx.Done():
			return fmt.Errorf("timed out waiting for notification of %s", id)
		}
	}
	for i := 0; i < warmup; i++ {
		if err := probe(fmt.Sprintf("warm-%04d", i)); err != nil {
			return 0, 0, err
		}
	}
	stats := pubsub.NewClientStats(pubsub.WithRawSamples())
	sub.SetStats(stats)
	pub.SetStats(stats)
	for i := 0; i < probes; i++ {
		if err := probe(fmt.Sprintf("probe-%04d", i)); err != nil {
			return 0, 0, err
		}
	}
	raw := stats.RawSamples()
	if len(raw) != probes {
		return 0, 0, fmt.Errorf("latency run measured %d samples, want %d", len(raw), probes)
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	return float64(quantileDur(raw, 0.50)), float64(quantileDur(raw, 0.99)), nil
}

// quantileDur reads the q-quantile of an ascending sample.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
