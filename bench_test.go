// Benchmarks regenerating every table and figure of the paper's
// evaluation (one Benchmark per figure, running the corresponding
// experiment at reduced scale) plus micro-benchmarks of the core
// operations whose complexities the paper states, and ablation benches
// for the design choices called out in DESIGN.md.
//
// Run everything:   go test -bench=. -benchmem
// One figure:       go test -bench=BenchmarkFig06 -benchmem
package probsum_test

import (
	"math/rand/v2"
	"testing"

	"probsum/internal/benchcases"
	"probsum/internal/conflict"
	"probsum/internal/core"
	"probsum/internal/experiments"
	"probsum/internal/interval"
	"probsum/internal/match"
	"probsum/internal/pairwise"
	"probsum/internal/store"
	"probsum/internal/subscription"
	"probsum/internal/workload"
)

// benchScale keeps figure benchmarks to a few hundred milliseconds;
// cmd/paperbench runs the full paper scale.
const benchScale = experiments.Scale(0.02)

// benchFigure runs one experiment per iteration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig06RedundantCoveringReduction(b *testing.B)  { benchFigure(b, "fig6") }
func BenchmarkFig07RedundantCoveringTrialBound(b *testing.B) { benchFigure(b, "fig7") }
func BenchmarkFig08NonCoverReduction(b *testing.B)           { benchFigure(b, "fig8") }
func BenchmarkFig09NonCoverTrialBound(b *testing.B)          { benchFigure(b, "fig9") }
func BenchmarkFig10NonCoverActualIterations(b *testing.B)    { benchFigure(b, "fig10") }
func BenchmarkFig11ExtremeIterations(b *testing.B)           { benchFigure(b, "fig11") }
func BenchmarkFig12ExtremeFalseDecisions(b *testing.B)       { benchFigure(b, "fig12") }
func BenchmarkFig13ComparisonGrowth(b *testing.B)            { benchFigure(b, "fig13") }
func BenchmarkFig14ComparisonRatio(b *testing.B)             { benchFigure(b, "fig14") }
func BenchmarkEq2Chain(b *testing.B)                         { benchFigure(b, "eq2") }

// Micro-benchmarks of the paper's complexity claims. Hot-path bodies
// live in internal/benchcases, shared with cmd/paperbench -benchjson
// so the JSON trajectory measures exactly these benchmarks.

// benchInstance builds the canonical instance (k=100, m=10).
func benchInstance(scenario string) workload.Instance {
	return benchcases.Instance(scenario)
}

// BenchmarkConflictTableBuild measures the O(m·k) table construction.
func BenchmarkConflictTableBuild(b *testing.B) {
	in := benchInstance("cover")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conflict.Build(in.S, in.Set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCS measures the minimized-cover-set reduction with the
// per-attribute extrema optimization (OPT-2).
func BenchmarkMCS(b *testing.B) {
	in := benchInstance("cover")
	tbl, err := conflict.Build(in.S, in.Set)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MCS(tbl)
	}
}

// BenchmarkMCSNaive is the ablation against the paper's literal
// O(m²k³) formulation.
func BenchmarkMCSNaive(b *testing.B) {
	in := benchInstance("cover")
	tbl, err := conflict.Build(in.S, in.Set)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MCSNaive(tbl)
	}
}

// BenchmarkRSPC measures the Monte-Carlo point-witness search on a
// non-covered instance (it usually terminates early with a witness).
func BenchmarkRSPC(b *testing.B) {
	in := benchInstance("noncover")
	rng := rand.New(rand.NewPCG(7, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RSPC(in.S, in.Set, nil, 1000, rng)
	}
}

// BenchmarkCheckerCovered measures the full Algorithm 4 pipeline on
// the covered scenario (worst case: all trials execute).
func BenchmarkCheckerCovered(b *testing.B) {
	in := benchInstance("cover")
	checker := benchcases.Checker(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checker.Covered(in.S, in.Set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoveredInto measures the zero-allocation hot path: the
// same pipeline as BenchmarkCheckerCovered but through CoveredInto
// with a reused Result, the way stores and brokers drive it. Expect 0
// allocs/op in steady state (covered decisions).
func BenchmarkCoveredInto(b *testing.B) {
	for _, tc := range []struct{ name, scenario string }{
		{"covered", "cover"},
		{"noncover", "noncover"},
	} {
		b.Run(tc.name, func(b *testing.B) { benchcases.CoveredInto(b, tc.scenario) })
	}
}

// BenchmarkCheckerNonCover measures the pipeline when fast paths can
// short-circuit.
func BenchmarkCheckerNonCover(b *testing.B) {
	in := benchInstance("noncover")
	checker, err := core.NewChecker(core.WithErrorProbability(1e-6), core.WithSeed(3, 4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checker.Covered(in.S, in.Set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckerNoMCSAblation quantifies what MCS buys: the same
// covered instance without the reduction.
func BenchmarkCheckerNoMCSAblation(b *testing.B) {
	in := benchInstance("cover")
	checker, err := core.NewChecker(
		core.WithErrorProbability(1e-6),
		core.WithSeed(5, 6),
		core.WithMCS(false),
		core.WithMaxTrials(2000),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checker.Covered(in.S, in.Set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairwiseBaseline measures the classical pairwise check the
// paper compares against.
func BenchmarkPairwiseBaseline(b *testing.B) {
	in := benchInstance("cover")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairwise.CoveredBySingle(in.S, in.Set)
	}
}

// Matching benchmarks (Algorithm 5 substrate).

func benchMatchSetup(b *testing.B) (*subscription.Schema, []match.ID, []subscription.Subscription, []subscription.Publication) {
	b.Helper()
	rng := rand.New(rand.NewPCG(11, 12))
	schema := subscription.UniformSchema(8, 0, 9999)
	stream, err := workload.NewComparisonStream(rng, workload.DefaultComparisonConfig(8))
	if err != nil {
		b.Fatal(err)
	}
	const k = 2000
	ids := make([]match.ID, k)
	subs := make([]subscription.Subscription, k)
	for i := 0; i < k; i++ {
		ids[i] = match.ID(i)
		subs[i] = stream.Next()
	}
	pubs := make([]subscription.Publication, 256)
	for i := range pubs {
		vals := make([]int64, 8)
		for a := range vals {
			vals[a] = rng.Int64N(10_000)
		}
		pubs[i] = subscription.Publication{Values: vals}
	}
	return schema, ids, subs, pubs
}

// BenchmarkMatchBruteForce is the O(k·m) scan baseline.
func BenchmarkMatchBruteForce(b *testing.B) {
	_, ids, subs, pubs := benchMatchSetup(b)
	var bf match.BruteForce
	for i, id := range ids {
		bf.Add(id, subs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.Match(pubs[i%len(pubs)])
	}
}

// BenchmarkMatchCountingIndex is the counting-algorithm index
// (reference [18] of the paper).
func BenchmarkMatchCountingIndex(b *testing.B) {
	schema, ids, subs, pubs := benchMatchSetup(b)
	idx, err := match.NewCountingIndex(schema, ids, subs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Match(pubs[i%len(pubs)])
	}
}

// BenchmarkMatchITreeIndex is the dynamic interval-tree matcher the
// broker publish path uses (lazy rebuild outside the timed loop).
func BenchmarkMatchITreeIndex(b *testing.B) {
	_, ids, subs, pubs := benchMatchSetup(b)
	idx := match.NewITreeIndex()
	for i, id := range ids {
		idx.Add(id, subs[i])
	}
	idx.Match(pubs[0]) // build the trees before timing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Match(pubs[i%len(pubs)])
	}
}

// BenchmarkStoreMatchForest measures Algorithm 5 with the multi-level
// cover forest versus its two-phase literal form.
func BenchmarkStoreMatchForest(b *testing.B) {
	st, pubs := benchStoreSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Match(pubs[i%len(pubs)])
	}
}

// BenchmarkStoreMatchTwoPhase is the literal Algorithm 5 baseline.
func BenchmarkStoreMatchTwoPhase(b *testing.B) {
	st, pubs := benchStoreSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.MatchTwoPhase(pubs[i%len(pubs)])
	}
}

// BenchmarkStoreSubscribe measures the steady-state cost of one
// subscribe/unsubscribe round-trip against a populated store — the
// arrival hot path the per-attribute candidate index accelerates.
func BenchmarkStoreSubscribe(b *testing.B) {
	for _, tc := range []struct {
		name    string
		policy  store.Policy
		pruning bool
	}{
		{"pairwise", store.PolicyPairwise, true},
		{"group", store.PolicyGroup, true},
		{"pairwise-noprune", store.PolicyPairwise, false},
		{"group-noprune", store.PolicyGroup, false},
	} {
		b.Run(tc.name, func(b *testing.B) { benchcases.StoreSubscribe(b, tc.policy, tc.pruning) })
	}
}

// BenchmarkStoreSubscribeSparse is the large-active-set regime the
// candidate index targets: thousands of narrow boxes stay active, and
// each arriving subscription is a shrunken copy of one of them — the
// covered-arrival suppression path the paper optimizes. The un-indexed
// store scans about half the active set per arrival before hitting the
// coverer; the index prunes straight to the few intersecting rows.
// Covered arrivals never touch the active caches, so the measurement
// isolates the coverage decision itself.
func BenchmarkStoreSubscribeSparse(b *testing.B) {
	const (
		k = 4000
		m = 4
	)
	sparseSub := func(rng *rand.Rand) subscription.Subscription {
		bounds := make([]interval.Interval, m)
		for a := range bounds {
			lo := rng.Int64N(9_800)
			bounds[a] = interval.New(lo, lo+40+rng.Int64N(160))
		}
		return subscription.Subscription{Bounds: bounds}
	}
	shrink := func(s subscription.Subscription) subscription.Subscription {
		bounds := make([]interval.Interval, len(s.Bounds))
		for a, iv := range s.Bounds {
			q := iv.Count() / 4
			bounds[a] = interval.New(iv.Lo+q, iv.Hi-q)
		}
		return subscription.Subscription{Bounds: bounds}
	}
	for _, tc := range []struct {
		name    string
		policy  store.Policy
		pruning bool
	}{
		{"pairwise", store.PolicyPairwise, true},
		{"pairwise-noprune", store.PolicyPairwise, false},
		{"group", store.PolicyGroup, true},
		{"group-noprune", store.PolicyGroup, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewPCG(91, 92))
			opts := []store.Option{store.WithCandidatePruning(tc.pruning)}
			if tc.policy == store.PolicyGroup {
				checker, err := core.NewChecker(core.WithSeed(93, 94), core.WithMaxTrials(2000))
				if err != nil {
					b.Fatal(err)
				}
				opts = append(opts, store.WithChecker(checker))
			}
			st, err := store.New(tc.policy, opts...)
			if err != nil {
				b.Fatal(err)
			}
			base := make([]subscription.Subscription, k)
			for i := range base {
				base[i] = sparseSub(rng)
				if _, err := st.Subscribe(store.ID(i), base[i]); err != nil {
					b.Fatal(err)
				}
			}
			probes := make([]subscription.Subscription, 256)
			for i := range probes {
				probes[i] = shrink(base[rng.IntN(k)])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := store.ID(k + 1 + i)
				res, err := st.Subscribe(id, probes[i%len(probes)])
				if err != nil {
					b.Fatal(err)
				}
				if res.Status != store.StatusCovered {
					b.Fatalf("probe %d unexpectedly active", i)
				}
				if _, err := st.Unsubscribe(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableSubscribeBatch measures burst admission through the
// public subsume.Table: a shuffled 512-subscription burst of broad
// parents and narrow children, admitted per-item in arrival order
// versus through SubscribeBatch (which re-sorts by volume inside one
// critical section, so parents admit first and children take the
// pairwise fast path). The acceptance target is batch ≥ 2x per-item
// on this workload; batch-4shards adds the sharded variant.
func BenchmarkTableSubscribeBatch(b *testing.B) {
	for _, tc := range []struct {
		name   string
		batch  bool
		shards int
	}{
		{"peritem", false, 1},
		{"batch", true, 1},
		{"batch-4shards", true, 4},
	} {
		b.Run(tc.name, func(b *testing.B) { benchcases.TableSubscribeBatch(b, tc.batch, tc.shards) })
	}
}

// BenchmarkTableUnsubscribeBatch measures a cancellation burst — the
// burst workload's broad parents withdrawn at once — removed per-item
// (each removal runs its own promotion cascade) versus through
// UnsubscribeBatch (one shared cascade frontier: every orphaned child
// is re-validated exactly once against the post-removal set).
func BenchmarkTableUnsubscribeBatch(b *testing.B) {
	for _, tc := range []struct {
		name   string
		batch  bool
		shards int
	}{
		{"peritem", false, 1},
		{"batch", true, 1},
		{"batch-4shards", true, 4},
	} {
		b.Run(tc.name, func(b *testing.B) { benchcases.TableUnsubscribeBatch(b, tc.batch, tc.shards) })
	}
}

func benchStoreSetup(b *testing.B) (*store.Store, []subscription.Publication) {
	b.Helper()
	rng := rand.New(rand.NewPCG(21, 22))
	stream, err := workload.NewComparisonStream(rng, workload.DefaultComparisonConfig(8))
	if err != nil {
		b.Fatal(err)
	}
	st, err := store.New(store.PolicyPairwise)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		if _, err := st.Subscribe(store.ID(i), stream.Next()); err != nil {
			b.Fatal(err)
		}
	}
	pubs := make([]subscription.Publication, 256)
	for i := range pubs {
		vals := make([]int64, 8)
		for a := range vals {
			vals[a] = rng.Int64N(10_000)
		}
		pubs[i] = subscription.Publication{Values: vals}
	}
	return st, pubs
}
